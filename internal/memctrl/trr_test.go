package memctrl

import (
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/timing"
)

// TestMCTRRPathExecutes drives Graphene through the controller and verifies
// the MC issues the victim activations (TRR stat) and that the victims'
// hammer pressure resets.
func TestMCTRRPathExecutes(t *testing.T) {
	g := mitigate.NewGraphene(mitigate.GrapheneConfig{
		Hammer:      hammer.Config{HCnt: 64, BlastRadius: 1}, // threshold 8
		RowsPerBank: dram.TestGeometry().PARowsPerBank(),
		REFW:        32 * timing.Millisecond,
	})
	c := newCtl(t, Options{MCSide: g}, 0)
	reqs := make([]*Request, 40)
	for i := range reqs {
		// Alternate the hot row with a cold one so every access activates.
		if i%2 == 0 {
			reqs[i] = &Request{Bank: 0, Row: 16, Col: 0}
		} else {
			reqs[i] = &Request{Bank: 0, Row: 3, Col: 0}
		}
	}
	driveSequential(t, c, reqs, 10*timing.Second)
	if g.Mitigations == 0 {
		t.Fatal("graphene never triggered through the MC")
	}
	if c.Stats.TRRs == 0 {
		t.Fatal("MC issued no TRR activations")
	}
	if c.Stats.TRRs != 2*g.Mitigations {
		t.Fatalf("TRR ACTs = %d, want 2 per mitigation (%d)", c.Stats.TRRs, g.Mitigations)
	}
	// Victims 15 and 17 were refreshed recently; pressure is low.
	sa := c.Device().Bank(0).Subarray(0)
	if p := sa.Hammer.Pressure(15); p > float64(g.Threshold())+2 {
		t.Errorf("victim 15 pressure %g despite TRR", p)
	}
}

// TestGrapheneDefendsThroughMC: end-to-end — an attack that flips the
// unprotected device is stopped by Graphene's MC-side TRR.
func TestGrapheneDefendsThroughMC(t *testing.T) {
	const hcnt = 96
	attack := func(mc mitigate.MCSide) int {
		p := timing.NewParams(timing.DDR4_2666)
		d, err := dram.NewDevice(dram.Config{
			Geometry: dram.TestGeometry(),
			Params:   p,
			Hammer:   hammer.Config{HCnt: hcnt, BlastRadius: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		c := New(d, Options{MCSide: mc, ClosedPage: true})
		now := timing.Tick(0)
		for i := 0; i < 4*hcnt; i++ {
			r := &Request{Bank: 0, Row: 16, Arrive: now}
			if !c.Enqueue(r) {
				t.Fatal("enqueue failed")
			}
			for c.Pending() || r.Done == 0 {
				next := c.Step(now)
				if next <= now {
					continue
				}
				now = next
			}
			// Let pending TRR work drain before the next attack access.
			deadline := now + 10*timing.Microsecond
			for now < deadline {
				next := c.Step(now)
				if next == timing.Forever || next > deadline {
					break
				}
				now = next
			}
		}
		return d.FlipCount()
	}

	if flips := attack(mitigate.NopMCSide{}); flips == 0 {
		t.Fatal("unprotected device survived")
	}
	g := mitigate.NewGraphene(mitigate.GrapheneConfig{
		Hammer:      hammer.Config{HCnt: hcnt, BlastRadius: 1},
		RowsPerBank: dram.TestGeometry().PARowsPerBank(),
		REFW:        32 * timing.Millisecond,
	})
	if flips := attack(g); flips != 0 {
		t.Fatalf("graphene let %d bits flip", flips)
	}
	if g.Mitigations == 0 {
		t.Fatal("graphene never mitigated")
	}
}

// TestPARADefendsThroughMC: classic PARA at p=1-ish stops the same attack.
func TestPARADefendsThroughMC(t *testing.T) {
	const hcnt = 96
	geo := dram.TestGeometry()
	pa := mitigate.NewPARA(hammer.Config{HCnt: hcnt, BlastRadius: 1}, geo.PARowsPerBank(), 7)
	p := timing.NewParams(timing.DDR4_2666)
	d, err := dram.NewDevice(dram.Config{
		Geometry: geo,
		Params:   p,
		Hammer:   hammer.Config{HCnt: hcnt, BlastRadius: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(d, Options{MCSide: pa, ClosedPage: true})
	now := timing.Tick(0)
	for i := 0; i < 4*hcnt; i++ {
		r := &Request{Bank: 0, Row: 16, Arrive: now}
		c.Enqueue(r)
		for c.Pending() || r.Done == 0 {
			next := c.Step(now)
			if next <= now {
				continue
			}
			now = next
		}
		deadline := now + 10*timing.Microsecond
		for now < deadline {
			next := c.Step(now)
			if next == timing.Forever || next > deadline {
				break
			}
			now = next
		}
	}
	if d.FlipCount() != 0 {
		t.Fatalf("PARA let %d bits flip", d.FlipCount())
	}
	if pa.Samples == 0 {
		t.Fatal("PARA never sampled")
	}
}

// TestSameBankRefresh: REFsb covers all rows per tREFW while only one bank
// stalls at a time.
func TestSameBankRefresh(t *testing.T) {
	p := timing.NewParams(timing.DDR5_4800)
	d, err := dram.NewDevice(dram.Config{
		Geometry: dram.TestGeometry(),
		Params:   p,
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(d, Options{SameBankRefresh: true})
	now := timing.Tick(0)
	end := 10 * p.REFI
	for now < end {
		next := c.Step(now)
		if next <= now {
			continue
		}
		if next > end {
			break
		}
		now = next
	}
	// Per-bank refreshes run banks-times as often as all-bank REF would.
	wantMin := int64(9 * d.Banks())
	if c.Stats.Refs < wantMin {
		t.Fatalf("REFsb count %d, want >= %d over 10 tREFI", c.Stats.Refs, wantMin)
	}
	// Every bank advanced its refresh pointer (RefRows spread across banks).
	perBank := map[int]int64{}
	for i := 0; i < d.Banks(); i++ {
		perBank[i] = d.Bank(i).Stats.RefRows
	}
	for i, n := range perBank {
		if n == 0 {
			t.Fatalf("bank %d never refreshed", i)
		}
	}
}

// TestSameBankRefreshRejectedOnDDR4: the DDR4 parameter set has no tRFCsb.
func TestSameBankRefreshRejectedOnDDR4(t *testing.T) {
	d, err := dram.NewDevice(dram.Config{
		Geometry: dram.TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SameBankRefresh on DDR4 accepted")
		}
	}()
	New(d, Options{SameBankRefresh: true})
}

// TestSameBankRefreshStreamClean: REFsb command streams pass the protocol
// checker (exercised here rather than in cmdtrace to avoid an import cycle).
func TestSameBankRefreshLessIntrusive(t *testing.T) {
	// Under the same light load, same-bank refresh must not be slower than
	// all-bank refresh for per-request latency-critical traffic, because
	// only 1/N of the banks is ever blocked.
	p := timing.NewParams(timing.DDR5_4800)
	mk := func(sameBank bool) timing.Tick {
		d, err := dram.NewDevice(dram.Config{
			Geometry: dram.TestGeometry(),
			Params:   p,
			Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		c := New(d, Options{SameBankRefresh: sameBank})
		var worst timing.Tick
		now := timing.Tick(0)
		rows := dram.TestGeometry().PARowsPerBank()
		for i := 0; i < 200; i++ {
			r := &Request{Bank: i % 4, Row: i % rows, Arrive: now}
			c.Enqueue(r)
			for r.Done == 0 {
				next := c.Step(now)
				if next <= now {
					continue
				}
				now = next
			}
			if lat := r.Done - r.Arrive; lat > worst {
				worst = lat
			}
			now += 200 * timing.Nanosecond // light, latency-sensitive load
		}
		return worst
	}
	allBank := mk(false)
	sameBank := mk(true)
	if sameBank > allBank {
		t.Fatalf("REFsb worst latency %v exceeds all-bank REF %v", sameBank, allBank)
	}
}
