package memctrl

import (
	"testing"
	"testing/quick"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/timing"
)

func newCtl(t *testing.T, opt Options, raaimt int) *Controller {
	t.Helper()
	p := timing.NewParams(timing.DDR4_2666)
	if raaimt > 0 {
		p = p.WithRAAIMT(raaimt)
	}
	d, err := dram.NewDevice(dram.Config{
		Geometry: dram.TestGeometry(),
		Params:   p,
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(d, opt)
}

// run drives the controller until all queued requests complete or the
// deadline passes, returning the finishing time.
func run(t *testing.T, c *Controller, deadline timing.Tick) timing.Tick {
	t.Helper()
	now := timing.Tick(0)
	for now < deadline {
		if !c.Pending() {
			return now
		}
		next := c.Step(now)
		if next <= now {
			continue
		}
		now = next
	}
	if c.Pending() {
		t.Fatalf("requests still pending at deadline %v (%d left)", deadline, c.QueuedRequests())
	}
	return now
}

func TestSingleReadLatency(t *testing.T) {
	c := newCtl(t, Options{}, 0)
	p := c.Device().Params()
	req := &Request{Bank: 0, Row: 10, Col: 2, Arrive: 0}
	if !c.Enqueue(req) {
		t.Fatal("enqueue failed")
	}
	run(t, c, timing.Millisecond)
	// Cold read: tRCD + tAA + tBL (plus a command-bus cycle alignment).
	want := p.RCD + p.AA + p.BL
	if req.Done < want || req.Done > want+4*p.TCK {
		t.Fatalf("read done at %v, want about %v", req.Done, want)
	}
	if c.Stats.Acts != 1 || c.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	// Two reads to the same row: second is a row hit.
	c := newCtl(t, Options{}, 0)
	a := &Request{Bank: 0, Row: 10, Col: 0}
	b := &Request{Bank: 0, Row: 10, Col: 5}
	c.Enqueue(a)
	c.Enqueue(b)
	run(t, c, timing.Millisecond)
	hitGap := b.Done - a.Done

	// Two reads to different rows: second needs PRE+ACT.
	c2 := newCtl(t, Options{}, 0)
	a2 := &Request{Bank: 0, Row: 10, Col: 0}
	b2 := &Request{Bank: 0, Row: 11, Col: 0}
	c2.Enqueue(a2)
	c2.Enqueue(b2)
	run(t, c2, timing.Millisecond)
	confGap := b2.Done - a2.Done

	if hitGap >= confGap {
		t.Fatalf("row hit gap %v not faster than conflict gap %v", hitGap, confGap)
	}
	if c.Stats.Acts != 1 {
		t.Fatalf("hit case used %d ACTs, want 1", c.Stats.Acts)
	}
	if c2.Stats.Acts != 2 {
		t.Fatalf("conflict case used %d ACTs, want 2", c2.Stats.Acts)
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	// N reads spread over banks finish much faster than N to one bank's
	// alternating rows.
	const n = 16
	c := newCtl(t, Options{}, 0)
	for i := 0; i < n; i++ {
		c.Enqueue(&Request{Bank: i % 4, Row: 5, Col: i})
	}
	parallel := run(t, c, timing.Millisecond)

	c2 := newCtl(t, Options{}, 0)
	for i := 0; i < n; i++ {
		c2.Enqueue(&Request{Bank: 0, Row: i, Col: 0})
	}
	serial := run(t, c2, timing.Millisecond)
	if parallel >= serial {
		t.Fatalf("parallel %v not faster than serial %v", parallel, serial)
	}
}

func TestRefreshIssuedPeriodically(t *testing.T) {
	c := newCtl(t, Options{}, 0)
	p := c.Device().Params()
	// Idle controller for ~10 tREFI with a trickle of requests.
	now := timing.Tick(0)
	end := 10 * p.REFI
	for now < end {
		next := c.Step(now)
		if next <= now {
			continue
		}
		now = minTick(next, end)
	}
	if c.Stats.Refs < 9 {
		t.Fatalf("only %d REFs in 10 tREFI", c.Stats.Refs)
	}
}

func TestRefreshDrainsOpenRow(t *testing.T) {
	c := newCtl(t, Options{}, 0)
	p := c.Device().Params()
	// Open a row just before refresh is due, then give a stream of hits: the
	// refresh must still happen (drain preempts new hits eventually).
	c.Enqueue(&Request{Bank: 0, Row: 3, Col: 0})
	now := timing.Tick(0)
	end := 3 * p.REFI
	for now < end {
		next := c.Step(now)
		if next <= now {
			continue
		}
		now = minTick(next, end)
	}
	if c.Stats.Refs < 2 {
		t.Fatalf("refresh starved: %d REFs in 3 tREFI", c.Stats.Refs)
	}
}

func TestRFMIssuedAtRAAIMT(t *testing.T) {
	const raaimt = 8
	c := newCtl(t, Options{}, raaimt)
	// 3*raaimt row conflicts in one bank -> at least 2 RFMs.
	for i := 0; i < 3*raaimt; i++ {
		c.Enqueue(&Request{Bank: 1, Row: i, Col: 0})
	}
	now := run(t, c, 10*timing.Millisecond)
	if c.Stats.RFMs < 1 {
		t.Fatalf("RFMs = %d, want >= 1 (urgent RFM before RAAMMT)", c.Stats.RFMs)
	}
	// Once the queue drains, deferred RFMs issue opportunistically until the
	// RAA counter falls below RAAIMT.
	for end := now + timing.Millisecond; now < end; {
		next := c.Step(now)
		if next <= now {
			continue
		}
		now = next
	}
	if c.Stats.RFMs < 2 {
		t.Fatalf("opportunistic RFMs never drained the counter: %d", c.Stats.RFMs)
	}
	if got := c.Device().Bank(1).Stats.RFMs; got != c.Stats.RFMs {
		t.Fatalf("device saw %d RFMs, MC issued %d", got, c.Stats.RFMs)
	}
}

func TestRFMFilterSkipsColdTraffic(t *testing.T) {
	p := timing.NewParams(timing.DDR4_2666)
	filter := mitigate.NewRFMFilter(512, 4, 1<<30 /* never hot */, p.REFW)
	c := newCtl(t, Options{RFMFilter: filter}, 8)
	for i := 0; i < 32; i++ {
		c.Enqueue(&Request{Bank: 0, Row: i, Col: 0})
	}
	run(t, c, 10*timing.Millisecond)
	if c.Stats.RFMs != 0 {
		t.Fatalf("filter failed to suppress RFMs: %d issued", c.Stats.RFMs)
	}
	if c.Stats.SkippedRFMs < 2 {
		t.Fatalf("SkippedRFMs = %d", c.Stats.SkippedRFMs)
	}
}

// driveSequential issues each request only after the previous completed, so
// alternating rows really do conflict (bulk enqueues would be reordered into
// row hits by FR-FCFS).
func driveSequential(t *testing.T, c *Controller, reqs []*Request, deadline timing.Tick) timing.Tick {
	t.Helper()
	now := timing.Tick(0)
	for _, r := range reqs {
		r.Arrive = now
		if !c.Enqueue(r) {
			t.Fatal("enqueue failed")
		}
		for c.Pending() {
			next := c.Step(now)
			if next <= now {
				continue
			}
			now = next
			if now > deadline {
				t.Fatalf("deadline exceeded with %d pending", c.QueuedRequests())
			}
		}
		if r.Done > now {
			now = r.Done
		}
	}
	return now
}

func TestBlockHammerDelaysHotRowThroughMC(t *testing.T) {
	p := timing.NewParams(timing.DDR4_2666)
	mk := func(mc mitigate.MCSide) timing.Tick {
		c := newCtl(t, Options{MCSide: mc}, 0)
		// Alternate two rows in one bank: every access is a row conflict,
		// and both rows quickly exceed the blacklist threshold.
		reqs := make([]*Request, 600)
		for i := range reqs {
			reqs[i] = &Request{Bank: 0, Row: i % 2, Col: 0}
		}
		return driveSequential(t, c, reqs, 10*timing.Second)
	}
	baseline := mk(mitigate.NopMCSide{})
	throttled := mk(mitigate.NewBlockHammer(mitigate.BlockHammerConfig{
		Hammer: hammer.Config{HCnt: 512, BlastRadius: 1},
		REFW:   p.REFW,
	}))
	if throttled <= 2*baseline {
		t.Fatalf("BlockHammer did not slow the hot pair: baseline %v, throttled %v", baseline, throttled)
	}
}

func TestRRSSwapBlocksChannelAndPreservesData(t *testing.T) {
	g := dram.TestGeometry()
	rrs := mitigate.NewRRS(mitigate.RRSConfig{
		SwapThreshold: 8,
		RowsPerBank:   g.PARowsPerBank(),
		SwapLatency:   4 * timing.Microsecond,
		REFW:          32 * timing.Millisecond,
		Seed:          3,
	})
	c := newCtl(t, Options{MCSide: rrs}, 0)
	d := c.Device()
	wantData := append([]byte(nil), d.InspectPA(0, 7)...)
	var reqs []*Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs,
			&Request{Bank: 0, Row: 7, Col: 0},
			&Request{Bank: 0, Row: 20 + i%3, Col: 0}) // force conflicts
	}
	driveSequential(t, c, reqs, 10*timing.Second)
	if c.Stats.Swaps == 0 {
		t.Fatal("no swaps triggered")
	}
	if c.Stats.BlockedTime < 4*timing.Microsecond {
		t.Fatalf("BlockedTime = %v", c.Stats.BlockedTime)
	}
	// Logical row 7 still reads back its original data through the RIT.
	phys := rrs.TranslateRow(0, 7)
	got := d.InspectPA(0, phys)
	if string(got) != string(wantData) {
		t.Fatal("row 7 data lost across swaps")
	}
}

func TestQueueCapacity(t *testing.T) {
	c := newCtl(t, Options{QueueCap: 2}, 0)
	if !c.Enqueue(&Request{Bank: 0, Row: 1}) || !c.Enqueue(&Request{Bank: 0, Row: 2}) {
		t.Fatal("enqueue under cap failed")
	}
	if c.Enqueue(&Request{Bank: 0, Row: 3}) {
		t.Fatal("enqueue over cap accepted")
	}
	if !c.Enqueue(&Request{Bank: 1, Row: 3}) {
		t.Fatal("other bank should have space")
	}
	if c.QueuedRequests() != 3 {
		t.Fatalf("QueuedRequests = %d", c.QueuedRequests())
	}
}

func TestOnCompleteCallback(t *testing.T) {
	var completed []*Request
	c := newCtl(t, Options{OnComplete: func(r *Request) { completed = append(completed, r) }}, 0)
	c.Enqueue(&Request{Bank: 0, Row: 1})
	c.Enqueue(&Request{Bank: 2, Row: 5, Write: true})
	run(t, c, timing.Millisecond)
	if len(completed) != 2 {
		t.Fatalf("completed = %d", len(completed))
	}
	for _, r := range completed {
		if r.Done == 0 {
			t.Fatal("completion without Done time")
		}
	}
	if c.Stats.CompletedWrites != 1 || c.Stats.CompletedReads != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Reads: 8, Writes: 2, RowMisses: 4, ReadLatency: 80, CompletedReads: 8}
	if got := s.RowHitRate(); got != 0.6 {
		t.Fatalf("RowHitRate = %g", got)
	}
	if got := s.AvgReadLatency(); got != 10 {
		t.Fatalf("AvgReadLatency = %v", got)
	}
	var zero Stats
	if zero.RowHitRate() != 0 || zero.AvgReadLatency() != 0 {
		t.Fatal("zero stats helpers")
	}
}

func TestAddrRoundTrip(t *testing.T) {
	g := dram.DefaultGeometry(true)
	f := func(pa uint64) bool {
		bank, row, col := DecodePA(pa, g)
		if bank < 0 || bank >= g.Banks || row < 0 || row >= g.PARowsPerBank() {
			return false
		}
		b2, r2, c2 := DecodePA(EncodePA(bank, row, col, g), g)
		return b2 == bank && r2 == row && c2 == col
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequentialAddressesInterleaveBanks(t *testing.T) {
	g := dram.DefaultGeometry(true)
	rowSize := uint64(g.RowBytes)
	b0, _, _ := DecodePA(0, g)
	b1, _, _ := DecodePA(rowSize, g) // one row-worth later: next bank
	if b0 == b1 {
		t.Fatal("sequential rows do not interleave across banks")
	}
}

// TestShadowThroughController: end-to-end — SHADOW installed in the device,
// driven by the MC's RFM interface, defends a row-conflict hammer pattern.
func TestShadowThroughControllerIntegration(t *testing.T) {
	// Built in package sim tests (needs the shadow controller); here we only
	// verify a device-side mitigator receives MC-issued RFMs, via PARFM.
	m := mitigate.NewPARFM(3, 1)
	p := timing.NewParams(timing.DDR4_2666).WithRAAIMT(8)
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    p,
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		Mitigator: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(d, Options{})
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{Bank: 0, Row: i % 2, Col: 0}
	}
	driveSequential(t, c, reqs, 10*timing.Second)
	if m.TRRs == 0 {
		t.Fatal("device-side mitigator never saw an RFM")
	}
}

// TestFAWLimitsActivationBursts: more than four ACTs must not issue within a
// rolling tFAW window.
func TestFAWLimitsActivationBursts(t *testing.T) {
	c := newCtl(t, Options{}, 0)
	p := c.Device().Params()
	// 8 activations spread over the 4 banks (two conflicting rows each):
	// ACT-bound, limited by tFAW/tRRD.
	for i := 0; i < 8; i++ {
		c.Enqueue(&Request{Bank: i % 4, Row: i / 4, Col: 0})
	}
	actTimes := []timing.Tick{}
	now := timing.Tick(0)
	prevActs := int64(0)
	for c.Pending() && now < timing.Millisecond {
		next := c.Step(now)
		if c.Stats.Acts > prevActs {
			actTimes = append(actTimes, now)
			prevActs = c.Stats.Acts
		}
		if next <= now {
			continue
		}
		now = next
	}
	if len(actTimes) != 8 {
		t.Fatalf("%d ACTs recorded", len(actTimes))
	}
	// Any 5 consecutive ACTs must span at least tFAW.
	for i := 0; i+4 < len(actTimes); i++ {
		if span := actTimes[i+4] - actTimes[i]; span < p.FAW {
			t.Fatalf("5 ACTs within %v < tFAW %v", span, p.FAW)
		}
	}
	// And consecutive ACTs must honor tRRD_S.
	for i := 1; i < len(actTimes); i++ {
		if gap := actTimes[i] - actTimes[i-1]; gap < p.RRDS {
			t.Fatalf("ACT gap %v < tRRD_S %v", gap, p.RRDS)
		}
	}
}

// TestCCDLimitsColumnBursts: same-bank-group reads respect tCCD_L, and the
// data bus never overlaps bursts.
func TestCCDLimitsColumnBursts(t *testing.T) {
	c := newCtl(t, Options{}, 0)
	p := c.Device().Params()
	// 6 hits on one open row: column-command bound.
	for i := 0; i < 6; i++ {
		c.Enqueue(&Request{Bank: 0, Row: 4, Col: i})
	}
	rdTimes := []timing.Tick{}
	now := timing.Tick(0)
	prev := int64(0)
	for c.Pending() && now < timing.Millisecond {
		next := c.Step(now)
		if c.Stats.Reads > prev {
			rdTimes = append(rdTimes, now)
			prev = c.Stats.Reads
		}
		if next <= now {
			continue
		}
		now = next
	}
	if len(rdTimes) != 6 {
		t.Fatalf("%d reads recorded", len(rdTimes))
	}
	for i := 1; i < len(rdTimes); i++ {
		gap := rdTimes[i] - rdTimes[i-1]
		if gap < p.CCDL {
			t.Fatalf("same-bank-group RD gap %v < tCCD_L %v", gap, p.CCDL)
		}
		if gap < p.BL {
			t.Fatalf("RD gap %v < burst length %v: data bus overlap", gap, p.BL)
		}
	}
}
