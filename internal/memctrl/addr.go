package memctrl

import "shadow/internal/dram"

// DecodePA splits a byte-granularity physical address into (bank, row, col)
// using the usual bank-interleaved layout — low bits select the column
// within a row, then the bank, then the row — so sequential physical
// addresses stream across banks. This is the static, reverse-engineerable
// PA-to-DA tuple mapping of Section II-B; SHADOW's dynamic remapping happens
// below this layer, inside the device.
func DecodePA(pa uint64, g dram.Geometry) (bank, row, col int) {
	const lineBits = 6 // 64-byte lines
	colsPerRow := g.RowBytes / 64
	if colsPerRow < 1 {
		colsPerRow = 1
	}
	v := pa >> lineBits
	col = int(v % uint64(colsPerRow))
	v /= uint64(colsPerRow)
	bank = int(v % uint64(g.Banks))
	v /= uint64(g.Banks)
	row = int(v % uint64(g.PARowsPerBank()))
	return bank, row, col
}

// EncodePA is the inverse of DecodePA (col and row must be in range).
func EncodePA(bank, row, col int, g dram.Geometry) uint64 {
	const lineBits = 6
	colsPerRow := g.RowBytes / 64
	if colsPerRow < 1 {
		colsPerRow = 1
	}
	v := uint64(row)
	v = v*uint64(g.Banks) + uint64(bank)
	v = v*uint64(colsPerRow) + uint64(col)
	return v << lineBits
}
