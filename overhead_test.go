// Telemetry overhead budget: the always-on observation config (metrics probe
// plus flight ring — what shadowsim attaches by default) must cost at most
// 25% wall-clock over the bare simulator on the SHADOW headline point. The
// budget is asserted here so an accidentally hot instrument (an alloc on the
// event path, an unguarded format call, a probe that defeats the readiness
// cache) fails CI as a measured number rather than shipping as drift.
package shadow_test

import (
	"testing"
	"time"

	"shadow/internal/exp"
	"shadow/internal/hammer"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// overheadBudgetPct is the gate: flight-config time over bare time, minus
// one, as percent. shadowbench's telemetry_overhead section reports the same
// quantity per scheme from the BenchmarkSim matrix.
const overheadBudgetPct = 25.0

// runShadowOnce runs the headline SHADOW point once, optionally with the
// always-on telemetry lane attached, and returns the wall-clock cost plus
// the flips statistic (used to pin run equivalence).
func runShadowOnce(t *testing.T, flighted bool) (time.Duration, int) {
	t.Helper()
	o := exp.RunOpts{Duration: 60 * timing.Microsecond, Cores: 4, Subarrays: 8, Seed: 5}
	geo := o.Geometry(timing.DDR4_2666)
	profiles := trace.MixHigh(o.Cores)
	for i := range profiles {
		if profiles[i].WorkingSetRows > geo.PARowsPerBank() {
			profiles[i].WorkingSetRows = geo.PARowsPerBank()
		}
	}
	pt := exp.Point{Scheme: exp.Shadow, HCnt: 4096, Blast: 3, Grade: timing.DDR4_2666, Seed: o.Seed}
	p, dm, mc := pt.Build(geo, o.Duration)
	cfg := sim.Config{
		Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
		Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
		Workload: trace.Generators(profiles, geo, o.Seed),
		Duration: o.Duration,
	}
	if flighted {
		rec := obs.NewRecorder(obs.Options{Metrics: true, Flight: flight.NewRing(flight.DefaultCapacity)})
		cfg.Probe = rec.NewTrack("overhead")
	}
	start := time.Now()
	res, err := sim.Run(cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	return elapsed, res.Flips
}

// TestTelemetryOverheadBudget measures probed-vs-unprobed cost directly:
// K interleaved pairs (bare, flight), min-of-K on each side to shed scheduler
// and GC noise, then the budget assertion. Interleaving keeps thermal and
// cache drift from biasing one side.
func TestTelemetryOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped under -short")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation multiplies mutex cost; the budget is gated on the uninstrumented build")
	}
	const rounds = 6
	minBare, minFlight := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		bare, bareFlips := runShadowOnce(t, false)
		flighted, flightFlips := runShadowOnce(t, true)
		if bareFlips != flightFlips {
			t.Fatalf("flight run diverged from bare run: %d vs %d flips (neutrality broken; the timing comparison is meaningless)", bareFlips, flightFlips)
		}
		if bare < minBare {
			minBare = bare
		}
		if flighted < minFlight {
			minFlight = flighted
		}
	}
	overheadPct := (float64(minFlight)/float64(minBare) - 1) * 100
	t.Logf("telemetry overhead: bare %v, flight %v (%+.1f%%, budget %.0f%%)",
		minBare, minFlight, overheadPct, overheadBudgetPct)
	if overheadPct > overheadBudgetPct {
		t.Errorf("always-on telemetry overhead %.1f%% exceeds the %.0f%% budget (bare %v, flight %v)",
			overheadPct, overheadBudgetPct, minBare, minFlight)
	}
}
