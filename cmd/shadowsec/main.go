// Command shadowsec runs the SHADOW security analysis (Section VII-A,
// Appendix XI): closed-form bit-flip probabilities per attack scenario, the
// secure RAAIMT search, and the Monte Carlo validation against the real
// implementation.
//
// Usage:
//
//	shadowsec                       # Table II sweep
//	shadowsec -hcnt 4096 -raaimt 64 # one configuration, per-scenario detail
//	shadowsec -montecarlo           # empirical attack validation
package main

import (
	"flag"
	"fmt"
	"os"

	"shadow/internal/dram"
	"shadow/internal/exp"
	"shadow/internal/report"
	"shadow/internal/security"
	"shadow/internal/trace"
)

func main() {
	hcnt := flag.Int("hcnt", 0, "Hammer count for a single-configuration report (0 = full table)")
	raaimt := flag.Int("raaimt", 0, "RAAIMT for a single-configuration report (0 = secure value)")
	monte := flag.Bool("montecarlo", false, "run the Monte Carlo attack validation")
	trials := flag.Int("trials", 10, "Monte Carlo trials per pattern")
	sweep := flag.Bool("sweep", false, "print the full RAAIMT x Hcnt security grid")
	templating := flag.Bool("templating", false, "measure template-validity decay under shuffling")
	flag.Parse()

	switch {
	case *monte:
		runMonteCarlo(*trials)
	case *sweep:
		runSweep()
	case *templating:
		runTemplating()
	case *hcnt > 0:
		r := *raaimt
		if r == 0 {
			r = security.SecureRAAIMT(*hcnt)
			if r == 0 {
				fmt.Fprintf(os.Stderr, "no secure RAAIMT in [8,4096] for Hcnt %d\n", *hcnt)
				os.Exit(1)
			}
		}
		c := security.DefaultConfig(*hcnt, r)
		fmt.Printf("Hcnt=%d RAAIMT=%d (rank-year probabilities)\n", *hcnt, r)
		fmt.Printf("  scenario I   (birthday single-aggressor): %.3E\n", c.ScenarioI())
		fmt.Printf("  scenario II  (multi-aggressor, one subarray): %.3E\n", c.ScenarioII())
		fmt.Printf("  scenario III (multi-aggressor, cross-subarray): %.3E\n", c.ScenarioIII())
		fmt.Printf("  worst case: %.3E  secure(<1%%): %v\n", c.BitFlipProbability(), c.Secure())
	default:
		fmt.Println(exp.Table2())
		fmt.Println("Secure RAAIMT per Hcnt:")
		for _, h := range []int{16384, 8192, 4096, 2048} {
			fmt.Printf("  Hcnt %5d -> RAAIMT %d\n", h, security.SecureRAAIMT(h))
		}
	}
}

// runSweep prints the rank-year bit-flip probability over a fine grid.
func runSweep() {
	hcnts := []int{65536, 32768, 16384, 8192, 4096, 2048, 1024}
	raaimts := []int{1024, 512, 256, 128, 64, 32, 16, 8}
	fmt.Printf("%-8s", "RAAIMT")
	for _, h := range hcnts {
		fmt.Printf("  %8s", fmt.Sprintf("%dK", h/1024))
	}
	fmt.Println()
	for _, r := range raaimts {
		fmt.Printf("%-8d", r)
		for _, h := range hcnts {
			c := security.DefaultConfig(h, r)
			p := c.BitFlipProbability()
			cell := fmt.Sprintf("%.0E", p)
			if p < 1e-99 {
				cell = "~0"
			}
			if c.Secure() {
				cell += "*"
			}
			fmt.Printf("  %8s", cell)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("* = secure (< 1%/rank-year)")
}

// runTemplating prints the template-validity decay curve.
func runTemplating() {
	points, err := security.MeasureTemplatingDecay(security.TemplatingConfig{
		RowsPerSubarray: 128,
		RAAIMT:          32,
		Checkpoints:     []int64{0, 8, 16, 32, 64, 128, 256, 512},
		Seed:            1,
	})
	exitOn(err)
	fmt.Println("template validity vs shuffles (128-row subarray, RAAIMT 32):")
	var values []float64
	for _, p := range points {
		fmt.Printf("  %5d shuffles: %5.1f%%\n", p.Shuffles, p.ValidFraction*100)
		values = append(values, p.ValidFraction)
	}
	fmt.Println("  trend:", report.Sparkline(values))
}

func runMonteCarlo(trials int) {
	base := security.MonteCarloConfig{
		HCnt: 256, RAAIMT: 16, RowsPerSubarray: 32,
		ActsPerTrial: 20000, Trials: trials,
	}
	patterns := []struct {
		name string
		mk   security.PatternFactory
	}{
		{"single-sided", func(trial int, g dram.Geometry) trace.Pattern {
			return &trace.SingleSided{Bank: 0, Row: g.RowsPerSubarray / 2}
		}},
		{"double-sided", func(trial int, g dram.Geometry) trace.Pattern {
			return &trace.DoubleSided{Bank: 0, Victim: g.RowsPerSubarray / 2}
		}},
		{"scenario-I", func(trial int, g dram.Geometry) trace.Pattern {
			return trace.NewScenarioI(0, 1, base.RAAIMT, g, uint64(trial)+1)
		}},
		{"scenario-II", func(trial int, g dram.Geometry) trace.Pattern {
			return trace.NewScenarioII(0, 1, 4, g, uint64(trial)+1)
		}},
		{"scenario-III", func(trial int, g dram.Geometry) trace.Pattern {
			return trace.NewScenarioIII(0, 4, g, uint64(trial)+1)
		}},
	}
	fmt.Printf("Monte Carlo (scaled device: Hcnt=%d RAAIMT=%d rows/subarray=%d, %d trials x %d ACTs)\n",
		base.HCnt, base.RAAIMT, base.RowsPerSubarray, base.Trials, base.ActsPerTrial)
	fmt.Printf("%-14s %-12s %-12s %s\n", "pattern", "baseline", "shadow", "shuffles")
	for _, p := range patterns {
		off := base
		off.Shadow = false
		on := base
		on.Shadow = true
		ro, err := security.RunMonteCarlo(off, p.mk)
		exitOn(err)
		rs, err := security.RunMonteCarlo(on, p.mk)
		exitOn(err)
		fmt.Printf("%-14s flips=%-6d flips=%-6d %d\n", p.name, ro.TotalFlips, rs.TotalFlips, rs.Shuffles)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
