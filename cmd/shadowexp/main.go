// Command shadowexp regenerates the paper's tables and figures.
//
// Usage:
//
//	shadowexp [-experiment all|table2|table3|area|fig8|fig9|fig10|fig11|fig12|adversarial]
//	          [-duration-us N] [-warmup-us N] [-cores N] [-seed N]
//
// Durations default to the harness's quick settings; raise -duration-us for
// higher-fidelity runs (the paper's windows are 32 ms = 32000 us).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shadow/internal/exp"
	"shadow/internal/timing"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	durationUS := flag.Int("duration-us", 150, "simulated duration per point, microseconds")
	warmupUS := flag.Int("warmup-us", 0, "simulated warmup per point, microseconds")
	cores := flag.Int("cores", 4, "cores per multiprogrammed mix")
	seed := flag.Uint64("seed", 1, "experiment seed")
	format := flag.String("format", "text", "output format: text or csv")
	chart := flag.Bool("chart", false, "also render performance figures as ASCII bar charts")
	flag.Parse()

	o := exp.RunOpts{
		Duration: timing.Tick(*durationUS) * timing.Microsecond,
		Warmup:   timing.Tick(*warmupUS) * timing.Microsecond,
		Cores:    *cores,
		Seed:     *seed,
	}

	type result struct {
		table  *exp.Table
		points []exp.PerfPoint
	}
	type runner func() (result, error)
	perf := func(f func(exp.RunOpts) ([]exp.PerfPoint, *exp.Table, error)) runner {
		return func() (result, error) {
			pts, t, err := f(o)
			return result{table: t, points: pts}, err
		}
	}
	tableOnly := func(t *exp.Table, err error) (result, error) { return result{table: t}, err }
	runners := map[string]runner{
		"table2":    func() (result, error) { return tableOnly(exp.Table2(), nil) },
		"table3":    func() (result, error) { return tableOnly(exp.Table3(), nil) },
		"area":      func() (result, error) { return tableOnly(exp.AreaTable(), nil) },
		"fig8":      perf(exp.Fig8),
		"fig8sweep": perf(exp.Fig8Sweep),
		"fig9":      perf(exp.Fig9),
		"fig10":     perf(exp.Fig10),
		"fig11":     perf(exp.Fig11),
		"fig12": func() (result, error) {
			_, t, err := exp.Fig12(o)
			return result{table: t}, err
		},
		"adversarial": func() (result, error) {
			_, t, err := exp.Adversarial(o)
			return result{table: t}, err
		},
	}
	order := []string{"table2", "table3", "area", "fig8", "fig8sweep", "fig9", "fig10", "fig11", "fig12", "adversarial"}

	var names []string
	if *experiment == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*experiment, ",") {
			if _, ok := runners[n]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (choose from %s)\n", n, strings.Join(order, ", "))
				os.Exit(2)
			}
			names = append(names, n)
		}
	}
	for _, n := range names {
		r, err := runners[n]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s\n%s\n", r.table.Title, r.table.CSV())
		default:
			fmt.Println(r.table)
		}
		if *chart && len(r.points) > 0 {
			fmt.Println(exp.Chart(r.table.Title+" (chart)", r.points))
		}
	}
}
