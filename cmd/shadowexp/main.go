// Command shadowexp regenerates the paper's tables and figures.
//
// Usage:
//
//	shadowexp [-experiment all|table2|table3|area|fig8|fig9|fig10|fig11|fig12|adversarial]
//	          [-duration-us N] [-warmup-us N] [-cores N] [-seed N]
//	          [-trace-out t.json] [-metrics-out m.json] [-progress]
//
// Durations default to the harness's quick settings; raise -duration-us for
// higher-fidelity runs (the paper's windows are 32 ms = 32000 us).
//
// With -trace-out or -metrics-out, every scheme run of the selected
// experiments records into one shadowscope recorder (one Perfetto track per
// operating point); probing forces the point sweep to run sequentially.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"shadow/internal/exp"
	"shadow/internal/obs"
	"shadow/internal/obs/fleet"
	"shadow/internal/obs/flight"
	"shadow/internal/obs/span"
	"shadow/internal/report"
	"shadow/internal/timing"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	durationUS := flag.Int("duration-us", 150, "simulated duration per point, microseconds")
	warmupUS := flag.Int("warmup-us", 0, "simulated warmup per point, microseconds")
	cores := flag.Int("cores", 4, "cores per multiprogrammed mix")
	seed := flag.Uint64("seed", 1, "experiment seed")
	format := flag.String("format", "text", "output format: text or csv")
	chart := flag.Bool("chart", false, "also render performance figures as ASCII bar charts")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON covering every scheme run (forces sequential points)")
	metricsOut := flag.String("metrics-out", "", "write the metrics dump (.csv suffix selects CSV, else JSON; forces sequential points)")
	progress := flag.Bool("progress", false, "print per-experiment progress lines to stderr")
	blame := flag.Bool("blame", false, "print a shadowtap stall-blame table covering every scheme run (forces sequential points)")
	inspect := flag.String("inspect", "", "serve a live run inspector on this address (forces sequential points)")
	workers := flag.Int("workers", 0, "concurrent operating points per sweep (0 = GOMAXPROCS; probing flags still force 1)")
	fleetInspect := flag.String("fleet-inspect", "", "serve the shadowfleet dashboard on this address (keeps the sweep parallel)")
	fleetScrape := flag.String("fleet-scrape", "", "comma-separated remote workers to scrape into the fleet, each 'id=http://host:port' or a bare URL")
	fleetScrapeInterval := flag.Duration("fleet-scrape-interval", time.Second, "remote worker scrape interval")
	fleetOut := flag.String("fleet-out", "", "write the final fleet.json roll-up to this file at exit")
	flightCap := flag.Int("flight", 0, "flight recorder capacity in events (0 disables; forces sequential points)")
	flightOut := flag.String("flight-out", "", "write the flight-recorder dump to this JSON file at exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the harness")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	pertick := flag.Bool("pertick", false, "use the per-tick scheduler instead of the event wheel (bit-identical results, differential baseline)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	o := exp.RunOpts{
		Duration:   timing.Tick(*durationUS) * timing.Microsecond,
		Warmup:     timing.Tick(*warmupUS) * timing.Microsecond,
		Cores:      *cores,
		Seed:       *seed,
		Workers:    *workers,
		NoTimeSkip: *pertick,
	}
	// Flight recording is opt-in here (unlike shadowsim): attaching probes
	// forces the point sweep sequential, so the default stays parallel.
	var ring *flight.Ring
	if *flightCap > 0 {
		ring = flight.NewRing(*flightCap)
	}
	watch := flight.NewWatch(ring)
	defer func() {
		// Deferred dump on panic: preserve the event window leading up to
		// the failure.
		if r := recover(); r != nil {
			watch.Ring().Freeze()
			dumpFlightOnPanic(watch, *flightOut)
			panic(r) //shadowvet:ignore panicmsg -- re-raising the original panic value after the flight dump
		}
	}()

	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" || ring != nil {
		rec = obs.NewRecorder(obs.Options{
			Metrics: *metricsOut != "",
			Events:  *traceOut != "",
			Flight:  ring,
		})
		o.ProbeFor = rec.NewTrack
	}

	// Span tracking: one collector per scheme run, accumulated in label
	// order. SpansFor/Progress force Workers=1, so spanRuns and the
	// inspector sources are only touched from this goroutine.
	type spanRun struct {
		label string
		col   *span.Collector
	}
	var spanRuns []spanRun
	if *blame || *inspect != "" {
		o.SpansFor = func(label string) *span.Collector {
			col := span.NewCollector(0)
			spanRuns = append(spanRuns, spanRun{label: label, col: col})
			if ring != nil {
				// Each scheme run's attribution is independently conserved.
				watch.Add(flight.Conservation(col.Aggregate))
			}
			return col
		}
	}
	blameRows := func() []report.BlameRow {
		rows := make([]report.BlameRow, 0, len(spanRuns))
		for _, r := range spanRuns {
			rows = append(rows, report.BlameRow{Label: r.label, Agg: r.col.Aggregate()})
		}
		return rows
	}
	var ins *obs.Inspector
	var insShutdown func()
	if *inspect != "" {
		ins = obs.NewInspector(time.Now)
		src := obs.InspectorSources{
			Blame: func() []byte { return report.BlameJSON(blameRows()) },
		}
		if rec != nil {
			src.Events = rec.EventCount
			if m := rec.Metrics(); m != nil {
				src.Prom = func() []byte {
					var b bytes.Buffer
					if err := m.WritePrometheus(&b); err != nil {
						return nil
					}
					return b.Bytes()
				}
			}
		}
		if ring != nil {
			src.Flight = func() []byte {
				var b bytes.Buffer
				if err := watch.WriteDump(&b); err != nil {
					return nil
				}
				return b.Bytes()
			}
		}
		ins.SetSources(src)
		srv := &http.Server{Addr: *inspect, Handler: ins.Handler()}
		errc := make(chan error, 1)
		go func() {
			errc <- srv.ListenAndServe()
		}()
		fmt.Fprintf(os.Stderr, "inspector: serving on %s\n", *inspect)
		insShutdown = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "inspector: shutdown: %v\n", err)
			}
			if err := <-errc; err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "inspector: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "inspector: shut down after final snapshot\n")
		}
		o.Progress = ins.Observe
	}

	// Watchdog checks ride the progress callback (which forces sequential
	// points, so the span collectors are only read from this goroutine).
	// Flips are deliberately NOT watched here: several experiments measure
	// corruption on purpose, so a flip is data, not an anomaly.
	if ring != nil {
		watch.OnTrip(func(tr flight.Trip) {
			fmt.Fprintf(os.Stderr, "watchdog %s tripped at %d ps: %s (flight ring frozen)\n",
				tr.Watchdog, tr.AtPS, tr.Detail)
		})
		prev := o.Progress
		o.Progress = func(label string, now, total timing.Tick) {
			if prev != nil {
				prev(label, now, total)
			}
			watch.Check(now)
		}
	}

	// Fleet observability (shadowfleet): unlike -inspect, the fleet hooks do
	// NOT force the sweep sequential — every fan-out worker gets its own
	// recorder (only ever touched from that worker's goroutine), renders it
	// to Prometheus text on its own goroutine, and hands the bytes to the
	// internally-locked collector; remote workers arrive through the same
	// parser via the scrape poller.
	var fleetCol *fleet.Collector
	var fleetShutdown func()
	var poller *fleet.Poller
	if *fleetInspect != "" || *fleetScrape != "" || *fleetOut != "" {
		fleetCol = fleet.NewCollector(fleet.Options{Clock: time.Now})
		fleetCol.Watch().OnTrip(func(tr flight.Trip) {
			fmt.Fprintf(os.Stderr, "fleet watchdog %s tripped: %s\n", tr.Watchdog, tr.Detail)
		})
		maxWorkers := o.Workers
		if maxWorkers <= 0 {
			maxWorkers = runtime.GOMAXPROCS(0)
		}
		// Per-worker recorders, indexed by the stable fan-out worker id; slot
		// w is only ever touched from worker w's goroutine.
		workerRecs := make([]*obs.Recorder, maxWorkers)
		wid := func(worker int) string { return fmt.Sprintf("w%d", worker) }
		ingestWorker := func(worker int) {
			if worker >= len(workerRecs) || workerRecs[worker] == nil {
				return
			}
			m := workerRecs[worker].Metrics()
			if m == nil {
				return
			}
			var b bytes.Buffer
			if err := m.WritePrometheus(&b); err != nil {
				return
			}
			fleetCol.Ingest(wid(worker), b.Bytes())
		}
		if o.ProbeFor == nil {
			// -trace-out/-metrics-out own the probes (and force the sweep
			// sequential); without them each worker records its own metrics.
			o.WorkerProbe = func(worker int, label string) *obs.Probe {
				if worker < len(workerRecs) && workerRecs[worker] == nil {
					workerRecs[worker] = obs.NewRecorder(obs.Options{Metrics: true})
				}
				if worker < len(workerRecs) {
					return workerRecs[worker].NewTrack(label)
				}
				return nil
			}
		}
		o.OnPointsPlanned = fleetCol.ExpectPoints
		o.OnPointStart = func(worker int, label, scheme string, seed uint64) {
			fleetCol.PointStart(wid(worker), label, scheme, seed)
		}
		o.OnPointProgress = func(worker int, label string, now, total timing.Tick) {
			if fleetCol.PointProgress(wid(worker), label, now, total) {
				ingestWorker(worker)
				fleetCol.Tick()
			}
		}
		o.OnPointDone = func(worker int, label, scheme string, seed, cmdHash uint64, rel float64) {
			fleetCol.PointDone(wid(worker), label, scheme, seed, cmdHash)
			ingestWorker(worker)
			fleetCol.Tick()
		}
		if *fleetScrape != "" {
			var targets []fleet.Target
			for _, s := range strings.Split(*fleetScrape, ",") {
				t, err := fleet.ParseTarget(strings.TrimSpace(s))
				exitOn(err)
				targets = append(targets, t)
			}
			poller = fleet.NewPoller(fleetCol, targets, nil)
			poller.Start(*fleetScrapeInterval)
		}
		if *fleetInspect != "" {
			srv := &http.Server{Addr: *fleetInspect, Handler: fleetCol.Handler()}
			errc := make(chan error, 1)
			go func() {
				errc <- srv.ListenAndServe()
			}()
			fmt.Fprintf(os.Stderr, "fleet: serving dashboard on %s\n", *fleetInspect)
			fleetShutdown = func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					fmt.Fprintf(os.Stderr, "fleet: shutdown: %v\n", err)
				}
				if err := <-errc; err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
				}
				fmt.Fprintf(os.Stderr, "fleet: dashboard shut down\n")
			}
		}
	}

	type result struct {
		table  *exp.Table
		points []exp.PerfPoint
	}
	type runner func() (result, error)
	perf := func(f func(exp.RunOpts) ([]exp.PerfPoint, *exp.Table, error)) runner {
		return func() (result, error) {
			pts, t, err := f(o)
			return result{table: t, points: pts}, err
		}
	}
	tableOnly := func(t *exp.Table, err error) (result, error) { return result{table: t}, err }
	runners := map[string]runner{
		"table2":    func() (result, error) { return tableOnly(exp.Table2(), nil) },
		"table3":    func() (result, error) { return tableOnly(exp.Table3(), nil) },
		"area":      func() (result, error) { return tableOnly(exp.AreaTable(), nil) },
		"fig8":      perf(exp.Fig8),
		"fig8sweep": perf(exp.Fig8Sweep),
		"fig9":      perf(exp.Fig9),
		"fig10":     perf(exp.Fig10),
		"fig11":     perf(exp.Fig11),
		"fig12": func() (result, error) {
			_, t, err := exp.Fig12(o)
			return result{table: t}, err
		},
		"adversarial": func() (result, error) {
			_, t, err := exp.Adversarial(o)
			return result{table: t}, err
		},
	}
	order := []string{"table2", "table3", "area", "fig8", "fig8sweep", "fig9", "fig10", "fig11", "fig12", "adversarial"}

	var names []string
	if *experiment == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*experiment, ",") {
			if _, ok := runners[n]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (choose from %s)\n", n, strings.Join(order, ", "))
				os.Exit(2)
			}
			names = append(names, n)
		}
	}
	for i, n := range names {
		start := time.Now()
		if *progress {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s...\n", i+1, len(names), n)
		}
		r, err := runners[n]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		if *progress {
			line := fmt.Sprintf("[%d/%d] %s done in %v", i+1, len(names), n, time.Since(start).Round(time.Millisecond))
			if rec != nil {
				line += fmt.Sprintf(" (%d events)", rec.EventCount())
			}
			fmt.Fprintln(os.Stderr, line)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s\n%s\n", r.table.Title, r.table.CSV())
		default:
			fmt.Println(r.table)
		}
		if *chart && len(r.points) > 0 {
			fmt.Println(exp.Chart(r.table.Title+" (chart)", r.points))
		}
	}

	ins.Done()
	if *blame {
		fmt.Println()
		fmt.Print(report.BlameTable("stall blame by scheme run (percent of resident time per cause)", blameRows()))
	}
	if rec != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			exitOn(err)
			exitOn(rec.WriteChromeTrace(f))
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "trace: %d events over %d tracks -> %s (open in ui.perfetto.dev)\n",
				rec.EventCount(), len(rec.Tracks()), *traceOut)
			if d := rec.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "warning: %d events dropped; narrow -experiment or shorten -duration-us\n", d)
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			exitOn(err)
			if strings.HasSuffix(*metricsOut, ".csv") {
				exitOn(rec.Metrics().WriteCSV(f))
			} else {
				exitOn(rec.Metrics().WriteJSON(f))
			}
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "metrics: %s\n", *metricsOut)
		}
	}
	if *flightOut != "" && ring != nil {
		f, err := os.Create(*flightOut)
		exitOn(err)
		exitOn(watch.WriteDump(f))
		exitOn(f.Close())
		fmt.Fprintf(os.Stderr, "flight: %d of %d events preserved -> %s\n",
			ring.Len(), ring.Total(), *flightOut)
	}
	if insShutdown != nil {
		insShutdown()
	}
	if poller != nil {
		poller.Stop()
	}
	if fleetCol != nil {
		fleetCol.Tick() // final trends + watchdog pass before the last snapshot
		if *fleetOut != "" {
			f, err := os.Create(*fleetOut)
			exitOn(err)
			_, werr := f.Write(fleetCol.MarshalFleet())
			exitOn(werr)
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "fleet: roll-up -> %s\n", *fleetOut)
		}
	}
	if fleetShutdown != nil {
		fleetShutdown()
	}
	if tr := watch.Tripped(); tr != nil {
		os.Exit(1)
	}
	// A fleet divergence trip is a correctness violation (same point+seed
	// hashed differently on two workers) and fails the run; straggler and
	// stalled-worker trips are performance anomalies — reported on stderr,
	// the dashboard, and fleet.json, but not fatal.
	if tr := fleetCol.Watch().Tripped(); tr != nil && tr.Watchdog == "fleet-divergence" {
		os.Exit(1)
	}
}

// dumpFlightOnPanic best-effort writes the frozen ring during a panic unwind:
// to -flight-out when given, else to stderr so the window is not lost.
func dumpFlightOnPanic(watch *flight.Watch, path string) {
	if watch.Ring() == nil {
		return
	}
	if path != "" {
		if f, err := os.Create(path); err == nil {
			watch.WriteDump(f)
			f.Close()
			fmt.Fprintf(os.Stderr, "panic: flight dump written to %s\n", path)
			return
		}
	}
	fmt.Fprintln(os.Stderr, "panic: flight dump follows")
	watch.WriteDump(os.Stderr)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
