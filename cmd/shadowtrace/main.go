// Command shadowtrace generates and inspects workload traces and attack
// patterns.
//
// Usage:
//
//	shadowtrace -list
//	shadowtrace -profile mcf -n 20        # dump 20 events
//	shadowtrace -profile mcf -summary     # access statistics over 100k events
//	shadowtrace -attack double-sided -n 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shadow/internal/dram"
	"shadow/internal/trace"
)

func main() {
	profile := flag.String("profile", "", "workload profile to generate")
	attack := flag.String("attack", "", "attack pattern: single-sided, double-sided, blast, scenario-1/2/3")
	n := flag.Int("n", 20, "events to dump")
	summary := flag.Bool("summary", false, "print statistics instead of raw events")
	export := flag.String("export", "", "write events as CSV to this file (use with -profile and -n)")
	seed := flag.Uint64("seed", 1, "seed")
	list := flag.Bool("list", false, "list profiles")
	flag.Parse()

	geo := dram.DefaultGeometry(false)
	switch {
	case *list:
		fmt.Println("profiles:", strings.Join(trace.Names(), " "))
		fmt.Println("attacks: single-sided double-sided blast scenario-1 scenario-2 scenario-3")
	case *attack != "":
		pat, err := mkAttack(*attack, geo, *seed)
		exitOn(err)
		fmt.Printf("# attack %s: bank,row per activation\n", pat.Name())
		for i := 0; i < *n; i++ {
			bank, row := pat.NextRow()
			fmt.Printf("%d,%d\n", bank, row)
		}
	case *profile != "":
		p, err := trace.ProfileByName(*profile)
		exitOn(err)
		gen := trace.NewSynth(p, geo, *seed)
		if *export != "" {
			f, err := os.Create(*export)
			exitOn(err)
			exitOn(trace.WriteEvents(f, gen, *n))
			exitOn(f.Close())
			fmt.Printf("wrote %d events of %s to %s\n", *n, p.Name, *export)
			return
		}
		if *summary {
			printSummary(gen, geo)
			return
		}
		fmt.Printf("# %s: gap,bank,row,col,write\n", p.Name)
		for i := 0; i < *n; i++ {
			e := gen.Next()
			fmt.Printf("%d,%d,%d,%d,%v\n", e.Gap, e.Bank, e.Row, e.Col, e.Write)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mkAttack(name string, geo dram.Geometry, seed uint64) (trace.Pattern, error) {
	victim := geo.RowsPerSubarray / 2
	switch name {
	case "single-sided":
		return &trace.SingleSided{Bank: 0, Row: victim}, nil
	case "double-sided":
		return &trace.DoubleSided{Bank: 0, Victim: victim}, nil
	case "blast":
		return trace.Blast(0, victim, 2), nil
	case "scenario-1":
		return trace.NewScenarioI(0, 0, 64, geo, seed), nil
	case "scenario-2":
		return trace.NewScenarioII(0, 0, 8, geo, seed), nil
	case "scenario-3":
		return trace.NewScenarioIII(0, 8, geo, seed), nil
	}
	return nil, fmt.Errorf("unknown attack %q", name)
}

func printSummary(gen *trace.Synth, geo dram.Geometry) {
	const events = 100000
	banks := map[int]int{}
	rows := map[[2]int]int{}
	var gaps, writes, sameRow int
	prev := [2]int{-1, -1}
	for i := 0; i < events; i++ {
		e := gen.Next()
		banks[e.Bank]++
		rows[[2]int{e.Bank, e.Row}]++
		gaps += e.Gap
		if e.Write {
			writes++
		}
		cur := [2]int{e.Bank, e.Row}
		if cur == prev {
			sameRow++
		}
		prev = cur
	}
	hottest := 0
	for _, c := range rows {
		if c > hottest {
			hottest = c
		}
	}
	p := gen.Profile()
	fmt.Printf("profile %s over %d events:\n", p.Name, events)
	fmt.Printf("  mean gap          %.1f insts (target %.1f)\n", float64(gaps)/events, 1000/p.MPKI)
	fmt.Printf("  row locality      %.3f (target %.2f)\n", float64(sameRow)/events, p.RowLocality)
	fmt.Printf("  write fraction    %.3f (target %.2f)\n", float64(writes)/events, p.WriteFrac)
	fmt.Printf("  banks touched     %d/%d\n", len(banks), geo.Banks)
	fmt.Printf("  distinct rows     %d\n", len(rows))
	fmt.Printf("  hottest row count %d (skew from HotFrac %.2f over %d rows)\n", hottest, p.HotFrac, p.HotRows)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
