// Command shadowbench turns a `go test -bench` run into a machine-readable
// benchmark report: it reads the benchmark output on stdin (echoing it
// through to stdout unchanged), parses every benchmark line, runs a short
// headline simulation per mitigation scheme with shadowtap span tracking,
// and writes everything as one JSON document.
//
// Usage:
//
//	go test -bench . -benchmem -benchtime 1x -run '^$' ./... | shadowbench -o BENCH_pr5.json
//
// With -before FILE, a prior report's benchmarks are embedded as the
// "before" side and every benchmark present in both runs gains a comparison
// entry (ns/op speedup, allocs/op reduction) — the before/after evidence the
// scheduler-performance acceptance gate asks for.
//
// Two trajectory features track performance across PRs:
//
//   - -history FILE (default BENCH_history.jsonl) appends one JSON line per
//     run — git revision plus every parsed benchmark — building a
//     append-only record of the repo's perf trajectory. Empty disables.
//   - -against FILE compares this run to a prior report (.json) or to the
//     last line of a history file (.jsonl); any benchmark more than 10%
//     slower is flagged on stderr and the exit status is 3, so CI can route
//     it to a warning lane without failing the build.
//
// The report carries no timestamps or host identifiers, so reruns on
// unchanged code produce comparable documents (the history file records the
// git revision, which is repo state, not wall clock).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"shadow/internal/exp"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSimShadow-8   1   51404917 ns/op   1234 acts/op
//
// The -8 GOMAXPROCS suffix is stripped; extra "value unit" metric pairs
// after ns/op are captured verbatim.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPair matches one custom benchmark metric ("1234 acts/op").
var metricPair = regexp.MustCompile(`([\d.]+) (\S+)`)

type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type simResult struct {
	Scheme        string           `json:"scheme"`
	Speedup       float64          `json:"speedup"`
	IPC           float64          `json:"ipc_total"`
	Acts          int64            `json:"acts"`
	RFMs          int64            `json:"rfms"`
	RowHitPct     float64          `json:"row_hit_pct"`
	AvgReadLatPS  int64            `json:"avg_read_latency_ps"`
	Requests      int64            `json:"requests"`
	StallPS       map[string]int64 `json:"stall_ps,omitempty"`
	Conserved     bool             `json:"conserved"`
	DominantStall string           `json:"dominant_stall,omitempty"`
}

// benchCompare relates one benchmark's before and after measurements.
// Speedup is before/after ns-per-op (>1 means faster); AllocCutPct is the
// allocs/op reduction in percent (present only when both sides ran with
// -benchmem).
type benchCompare struct {
	Name        string  `json:"name"`
	BeforeNs    float64 `json:"before_ns_per_op"`
	AfterNs     float64 `json:"after_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	BeforeAlloc float64 `json:"before_allocs_per_op,omitempty"`
	AfterAlloc  float64 `json:"after_allocs_per_op,omitempty"`
	AllocCutPct float64 `json:"alloc_reduction_pct,omitempty"`
}

// telemetryOverhead quantifies, per scheme, the cost of observation over the
// bare scheduler: the always-on lane (/flight: metrics probe + flight ring)
// and full observation (/probed: metrics + spans). The baseline is the
// unobserved mode running the SAME scheduler as the telemetry lanes —
// /timeskip (the event wheel) when present, /event for pre-wheel reports —
// so the percentages isolate observation cost from scheduler speedup.
// Overhead percentages are (mode-base)/base*100; the flight lane is the one
// held to the ≤25% budget.
type telemetryOverhead struct {
	Scheme       string  `json:"scheme"`
	Baseline     string  `json:"baseline_mode"`
	BaselineNs   float64 `json:"baseline_ns_per_op"`
	FlightNs     float64 `json:"flight_ns_per_op,omitempty"`
	FlightPct    float64 `json:"flight_overhead_pct"`
	FlightAllocs float64 `json:"flight_allocs_per_op"`
	ProbedNs     float64 `json:"probed_ns_per_op,omitempty"`
	ProbedPct    float64 `json:"probed_overhead_pct"`
}

// schedulerSpeedup records, per BenchmarkSim lane, the event wheel's ns/op
// against the two per-tick schedulers it replaces: /event (readiness cache,
// per-tick outer loop) and /rescan (full-rescan double oracle).
type schedulerSpeedup struct {
	Lane       string  `json:"lane"`
	TimeskipNs float64 `json:"timeskip_ns_per_op"`
	EventNs    float64 `json:"event_ns_per_op,omitempty"`
	VsEvent    float64 `json:"speedup_vs_event,omitempty"`
	RescanNs   float64 `json:"rescan_ns_per_op,omitempty"`
	VsRescan   float64 `json:"speedup_vs_rescan,omitempty"`
}

type benchReport struct {
	Benchmarks []benchResult `json:"benchmarks"`
	// Before and Compare are present only when -before supplies a prior
	// report to measure against.
	Before  []benchResult  `json:"before_benchmarks,omitempty"`
	Compare []benchCompare `json:"compare,omitempty"`
	// TelemetryOverhead and SchedulerSpeedup are derived from the
	// BenchmarkSim mode matrix when its lanes are present in this run.
	TelemetryOverhead []telemetryOverhead `json:"telemetry_overhead,omitempty"`
	SchedulerSpeedup  []schedulerSpeedup  `json:"scheduler_speedup,omitempty"`
	Sims              []simResult         `json:"sims"`
}

// historyEntry is one line of the append-only BENCH_history.jsonl perf
// trajectory: which revision ran, and what every benchmark measured.
type historyEntry struct {
	GitRev     string        `json:"git_rev,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_pr5.json", "output JSON path")
	before := flag.String("before", "", "prior report JSON to compare against (its benchmarks become the 'before' side)")
	history := flag.String("history", "BENCH_history.jsonl", "append this run's benchmarks to a JSONL perf-trajectory file (empty disables)")
	against := flag.String("against", "", "flag >10% ns/op or allocs/op regressions vs a prior report (.json) or history file's last line (.jsonl); exit 3 on regression")
	skipSims := flag.Bool("no-sims", false, "skip the headline scheme simulations")
	flag.Parse()

	benches, err := parseBenchStream()
	exitOn(err)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "shadowbench: no benchmark lines parsed from stdin")
		os.Exit(1)
	}

	rep := benchReport{Benchmarks: benches, Sims: []simResult{}}
	rep.TelemetryOverhead = telemetrySection(benches)
	rep.SchedulerSpeedup = speedupSection(benches)
	if *before != "" {
		prior, err := loadReport(*before)
		exitOn(err)
		rep.Before = prior.Benchmarks
		rep.Compare = compare(prior.Benchmarks, benches)
	}
	if !*skipSims {
		rep.Sims, err = headlineSims()
		exitOn(err)
	}

	if *out != "" && *out != "/dev/null" {
		f, err := os.Create(*out)
		exitOn(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(rep))
		exitOn(f.Close())
		fmt.Fprintf(os.Stderr, "shadowbench: %d benchmarks, %d scheme sims -> %s\n",
			len(rep.Benchmarks), len(rep.Sims), *out)
	}
	for _, to := range rep.TelemetryOverhead {
		fmt.Fprintf(os.Stderr, "shadowbench: telemetry overhead %s (vs %s): flight %+.1f%% (%.0f allocs/op), probed %+.1f%%\n",
			to.Scheme, to.Baseline, to.FlightPct, to.FlightAllocs, to.ProbedPct)
	}
	for _, sp := range rep.SchedulerSpeedup {
		fmt.Fprintf(os.Stderr, "shadowbench: wheel speedup %s: %.2fx vs event, %.2fx vs rescan\n",
			sp.Lane, sp.VsEvent, sp.VsRescan)
	}

	if *history != "" {
		exitOn(appendHistory(*history, benches))
	}

	// The regression lane runs last so every artifact is written before a
	// non-zero exit; exit 3 distinguishes "slower" from "broken".
	if *against != "" {
		prior, err := loadAgainst(*against)
		exitOn(err)
		if regs := regressions(prior, benches); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "shadowbench: REGRESSION", r)
			}
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "shadowbench: no >10%% regressions vs %s\n", *against)
	}
}

// simCell is one parsed point of the BenchmarkSim <lane>/<mode> matrix.
type simCell struct{ ns, allocs float64 }

// simMatrix groups BenchmarkSim results by lane then mode (names like
// BenchmarkSim/shadow/event), returning the matrix and its sorted lanes.
func simMatrix(benches []benchResult) (map[string]map[string]simCell, []string) {
	cells := map[string]map[string]simCell{}
	for _, b := range benches {
		rest, found := strings.CutPrefix(b.Name, "BenchmarkSim/")
		if !found {
			continue
		}
		lane, m, found := strings.Cut(rest, "/")
		if !found {
			continue
		}
		if cells[lane] == nil {
			cells[lane] = map[string]simCell{}
		}
		cells[lane][m] = simCell{ns: b.NsPerOp, allocs: b.Metrics["allocs/op"]}
	}
	lanes := make([]string, 0, len(cells))
	for s := range cells {
		lanes = append(lanes, s)
	}
	sort.Strings(lanes)
	return cells, lanes
}

// telemetrySection derives the per-scheme observation-cost table from the
// BenchmarkSim mode matrix.
func telemetrySection(benches []benchResult) []telemetryOverhead {
	cells, schemes := simMatrix(benches)
	var out []telemetryOverhead
	for _, s := range schemes {
		// The flight/probed lanes run the shipped scheduler, so the bare
		// baseline is /timeskip; /event is the pre-wheel fallback name.
		baseMode := "timeskip"
		base, ok := cells[s][baseMode]
		if !ok {
			baseMode = "event"
			base, ok = cells[s][baseMode]
		}
		if !ok || base.ns <= 0 {
			continue
		}
		to := telemetryOverhead{Scheme: s, Baseline: baseMode, BaselineNs: base.ns}
		if fl, ok := cells[s]["flight"]; ok {
			to.FlightNs = fl.ns
			to.FlightPct = (fl.ns - base.ns) / base.ns * 100
			to.FlightAllocs = fl.allocs
		}
		if pr, ok := cells[s]["probed"]; ok {
			to.ProbedNs = pr.ns
			to.ProbedPct = (pr.ns - base.ns) / base.ns * 100
		}
		if to.FlightNs == 0 && to.ProbedNs == 0 {
			continue
		}
		out = append(out, to)
	}
	return out
}

// speedupSection derives the per-lane event-wheel speedup table from the
// BenchmarkSim mode matrix. Lanes without a /timeskip cell are skipped.
func speedupSection(benches []benchResult) []schedulerSpeedup {
	cells, lanes := simMatrix(benches)
	var out []schedulerSpeedup
	for _, lane := range lanes {
		ts, ok := cells[lane]["timeskip"]
		if !ok || ts.ns <= 0 {
			continue
		}
		sp := schedulerSpeedup{Lane: lane, TimeskipNs: ts.ns}
		if ev, ok := cells[lane]["event"]; ok && ev.ns > 0 {
			sp.EventNs = ev.ns
			sp.VsEvent = ev.ns / ts.ns
		}
		if rs, ok := cells[lane]["rescan"]; ok && rs.ns > 0 {
			sp.RescanNs = rs.ns
			sp.VsRescan = rs.ns / ts.ns
		}
		if sp.EventNs == 0 && sp.RescanNs == 0 {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// appendHistory appends one trajectory line to the JSONL history file.
// Consecutive entries with the same git revision collapse to the latest:
// re-running make bench on an unchanged tree replaces the previous line
// instead of piling up duplicates, so the trajectory stays one line per
// revision actually benchmarked.
func appendHistory(path string, benches []benchResult) error {
	entry := historyEntry{GitRev: gitRev(), Benchmarks: benches}
	if entry.GitRev != "" {
		if replaced, err := replaceHistoryTail(path, entry); err != nil {
			return err
		} else if replaced {
			fmt.Fprintf(os.Stderr, "shadowbench: trajectory updated in %s (same rev %s, kept latest)\n", path, entry.GitRev)
			return nil
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(entry); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shadowbench: trajectory appended to %s\n", path)
	return nil
}

// replaceHistoryTail rewrites the history file with its last line replaced
// by entry when that line carries the same git revision. Returns whether a
// replacement happened; a missing file or a tail from a different revision
// is not an error (the caller appends normally).
func replaceHistoryTail(path string, entry historyEntry) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[len(lines)-1]) == "" {
		return false, nil
	}
	var tail historyEntry
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil || tail.GitRev != entry.GitRev {
		return false, nil
	}
	var buf strings.Builder
	for _, line := range lines[:len(lines)-1] {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	enc, err := json.Marshal(entry)
	if err != nil {
		return false, err
	}
	buf.Write(enc)
	buf.WriteByte('\n')
	return true, os.WriteFile(path, []byte(buf.String()), 0o644)
}

// gitRev best-effort resolves the short HEAD revision; empty when git or the
// repository is unavailable (the history line is still useful without it).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadAgainst reads the comparison baseline: a report's benchmarks, or the
// last line of a JSONL history file.
func loadAgainst(path string) ([]benchResult, error) {
	if !strings.HasSuffix(path, ".jsonl") {
		rep, err := loadReport(path)
		if err != nil {
			return nil, err
		}
		return rep.Benchmarks, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var last string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) != "" {
			last = line
		}
	}
	if last == "" {
		return nil, fmt.Errorf("%s: empty history", path)
	}
	var entry historyEntry
	if err := json.Unmarshal([]byte(last), &entry); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entry.Benchmarks, nil
}

// regressions lists benchmarks more than 10% worse than the baseline, on
// wall time (ns/op) or allocation count (allocs/op — only compared when
// both sides ran with -benchmem).
func regressions(before, after []benchResult) []string {
	prior := make(map[string]benchResult, len(before))
	for _, b := range before {
		prior[b.Name] = b
	}
	var out []string
	for _, a := range after {
		b, ok := prior[a.Name]
		if !ok || b.NsPerOp <= 0 || a.NsPerOp <= 0 {
			continue
		}
		if a.NsPerOp > b.NsPerOp*1.10 {
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				a.Name, b.NsPerOp, a.NsPerOp, (a.NsPerOp-b.NsPerOp)/b.NsPerOp*100))
		}
		ba, bOk := b.Metrics["allocs/op"]
		aa, aOk := a.Metrics["allocs/op"]
		if bOk && aOk && ba > 0 && aa > ba*1.10 {
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f allocs/op (%+.1f%%)",
				a.Name, ba, aa, (aa-ba)/ba*100))
		}
	}
	return out
}

// loadReport reads a previously written benchReport.
func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compare pairs before/after benchmarks by name and derives speedup and
// alloc-reduction figures. Benchmarks present on only one side are skipped —
// the comparison covers the intersection.
func compare(before, after []benchResult) []benchCompare {
	prior := make(map[string]benchResult, len(before))
	for _, b := range before {
		prior[b.Name] = b
	}
	var out []benchCompare
	for _, a := range after {
		b, ok := prior[a.Name]
		if !ok || b.NsPerOp <= 0 || a.NsPerOp <= 0 {
			continue
		}
		c := benchCompare{
			Name:     a.Name,
			BeforeNs: b.NsPerOp,
			AfterNs:  a.NsPerOp,
			Speedup:  b.NsPerOp / a.NsPerOp,
		}
		ba, aOk := b.Metrics["allocs/op"]
		aa, bOk := a.Metrics["allocs/op"]
		if aOk && bOk && ba > 0 {
			c.BeforeAlloc = ba
			c.AfterAlloc = aa
			c.AllocCutPct = (1 - aa/ba) * 100
		}
		out = append(out, c)
	}
	return out
}

// parseBenchStream reads stdin, echoes each line to stdout, and collects the
// benchmark results.
func parseBenchStream() ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		nsPerOp, _ := strconv.ParseFloat(m[3], 64)
		b := benchResult{Name: m[1], Iters: iters, NsPerOp: nsPerOp}
		for _, pair := range metricPair.FindAllStringSubmatch(strings.TrimSpace(m[4]), -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[pair[2]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// headlineSchemes are the per-scheme headline simulation points.
var headlineSchemes = []exp.Scheme{
	exp.Baseline, exp.Shadow, exp.PARFM, exp.MithrilPerf, exp.BlockHammer, exp.RRS,
}

// headlineSims runs one short span-tracked simulation per headline scheme
// and extracts the stats a regression dashboard wants: speedup, IPC, command
// counts, and the shadowtap blame split.
func headlineSims() ([]simResult, error) {
	out := make([]simResult, 0, len(headlineSchemes))
	for _, scheme := range headlineSchemes {
		var col *span.Collector
		o := exp.RunOpts{
			Duration:  80 * timing.Microsecond,
			Cores:     2,
			Seed:      1,
			Subarrays: 8,
			SpansFor:  func(string) *span.Collector { col = span.NewCollector(0); return col },
		}
		pt := exp.Point{Scheme: scheme, HCnt: 4096, Blast: 3, Grade: timing.DDR4_2666, Seed: 1}
		speedup, res, err := exp.RunPoint(pt, trace.MixHigh(o.Cores), o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		agg := col.Aggregate()
		sr := simResult{
			Scheme:       string(scheme),
			Speedup:      speedup,
			IPC:          res.TotalIPC(),
			Acts:         res.MC.Acts,
			RFMs:         res.MC.RFMs,
			RowHitPct:    res.MC.RowHitRate() * 100,
			AvgReadLatPS: int64(res.MC.AvgReadLatency()),
			Requests:     agg.Spans,
			Conserved:    agg.Conserved(),
		}
		for c := span.Cause(0); c < span.NumCauses; c++ {
			if agg.Stall[c] > 0 {
				if sr.StallPS == nil {
					sr.StallPS = map[string]int64{}
				}
				sr.StallPS[c.String()] = int64(agg.Stall[c])
			}
		}
		if agg.Spans > 0 {
			best, bestV := span.CauseService, timing.Tick(0)
			for c := span.Cause(0); c < span.NumCauses; c++ {
				if agg.Stall[c] > bestV {
					best, bestV = c, agg.Stall[c]
				}
			}
			sr.DominantStall = best.String()
		}
		out = append(out, sr)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shadowbench:", err)
		os.Exit(1)
	}
}
