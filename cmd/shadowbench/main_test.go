package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegressionsFlagsNsAndAllocs(t *testing.T) {
	before := []benchResult{
		{Name: "BenchmarkSim/shadow", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 100}},
		{Name: "BenchmarkSim/drr", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 100}},
		{Name: "BenchmarkSim/para", NsPerOp: 1000},
	}
	after := []benchResult{
		// >10% slower AND >10% more allocations: two findings.
		{Name: "BenchmarkSim/shadow", NsPerOp: 1200, Metrics: map[string]float64{"allocs/op": 150}},
		// Same wall time, allocation-only regression: the satellite case.
		{Name: "BenchmarkSim/drr", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 112}},
		// No -benchmem metrics on either side: allocs not compared.
		{Name: "BenchmarkSim/para", NsPerOp: 1050},
	}
	regs := regressions(before, after)
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want 3 findings", regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{
		"BenchmarkSim/shadow: 1000 -> 1200 ns/op",
		"BenchmarkSim/shadow: 100 -> 150 allocs/op",
		"BenchmarkSim/drr: 100 -> 112 allocs/op",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions missing %q:\n%s", want, joined)
		}
	}
}

func TestRegressionsWithinBudgetSilent(t *testing.T) {
	before := []benchResult{{Name: "B", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 100}}}
	after := []benchResult{{Name: "B", NsPerOp: 1090, Metrics: map[string]float64{"allocs/op": 109}}}
	if regs := regressions(before, after); len(regs) != 0 {
		t.Fatalf("within-budget run flagged: %v", regs)
	}
}

func readHistory(t *testing.T, path string) []historyEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []historyEntry
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var e historyEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("history line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

func writeHistory(t *testing.T, path string, entries []historyEntry) {
	t.Helper()
	var b strings.Builder
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReplaceHistoryTail covers the dedup satellite: consecutive history
// entries with the same git revision collapse to the latest, earlier
// revisions stay untouched, and different or missing revisions append.
func TestReplaceHistoryTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")

	// Missing file: nothing to replace.
	replaced, err := replaceHistoryTail(path, historyEntry{GitRev: "abc1234"})
	if err != nil || replaced {
		t.Fatalf("missing file: replaced=%v err=%v", replaced, err)
	}

	writeHistory(t, path, []historyEntry{
		{GitRev: "old0001", Benchmarks: []benchResult{{Name: "B", NsPerOp: 1}}},
		{GitRev: "abc1234", Benchmarks: []benchResult{{Name: "B", NsPerOp: 2}}},
	})

	// Same rev as the tail: the tail is replaced, the older line survives.
	replaced, err = replaceHistoryTail(path, historyEntry{
		GitRev:     "abc1234",
		Benchmarks: []benchResult{{Name: "B", NsPerOp: 3}},
	})
	if err != nil || !replaced {
		t.Fatalf("same-rev tail: replaced=%v err=%v", replaced, err)
	}
	entries := readHistory(t, path)
	if len(entries) != 2 {
		t.Fatalf("history has %d lines, want 2: %+v", len(entries), entries)
	}
	if entries[0].GitRev != "old0001" || entries[0].Benchmarks[0].NsPerOp != 1 {
		t.Fatalf("older line perturbed: %+v", entries[0])
	}
	if entries[1].GitRev != "abc1234" || entries[1].Benchmarks[0].NsPerOp != 3 {
		t.Fatalf("tail not replaced with latest: %+v", entries[1])
	}

	// Different rev: no replacement (the caller appends).
	replaced, err = replaceHistoryTail(path, historyEntry{GitRev: "def5678"})
	if err != nil || replaced {
		t.Fatalf("different rev: replaced=%v err=%v", replaced, err)
	}
	if entries := readHistory(t, path); len(entries) != 2 {
		t.Fatalf("no-op replacement changed the file: %+v", entries)
	}

	// A rev only earlier in the file (not the tail) must NOT be replaced:
	// only *consecutive* duplicates collapse.
	replaced, err = replaceHistoryTail(path, historyEntry{GitRev: "old0001"})
	if err != nil || replaced {
		t.Fatalf("non-tail rev: replaced=%v err=%v", replaced, err)
	}
}

// TestLoadAgainstHistoryTail: -against on a .jsonl history compares against
// the last line, which after dedup is the latest run of the tail revision.
func TestLoadAgainstHistoryTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	writeHistory(t, path, []historyEntry{
		{GitRev: "a", Benchmarks: []benchResult{{Name: "B", NsPerOp: 10}}},
		{GitRev: "b", Benchmarks: []benchResult{{Name: "B", NsPerOp: 20, Metrics: map[string]float64{"allocs/op": 4}}}},
	})
	benches, err := loadAgainst(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].NsPerOp != 20 || benches[0].Metrics["allocs/op"] != 4 {
		t.Fatalf("loadAgainst = %+v, want the tail entry", benches)
	}
}

func TestTelemetrySectionBaselinesOnTimeskip(t *testing.T) {
	benches := []benchResult{
		{Name: "BenchmarkSim/shadow/timeskip", NsPerOp: 100},
		{Name: "BenchmarkSim/shadow/event", NsPerOp: 140},
		{Name: "BenchmarkSim/shadow/flight", NsPerOp: 110, Metrics: map[string]float64{"allocs/op": 7}},
		{Name: "BenchmarkSim/shadow/probed", NsPerOp: 150},
		// A pre-wheel report shape: no /timeskip cell, baseline falls back
		// to /event.
		{Name: "BenchmarkSim/para/event", NsPerOp: 200},
		{Name: "BenchmarkSim/para/flight", NsPerOp: 250},
	}
	out := telemetrySection(benches)
	if len(out) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(out), out)
	}
	para, shadow := out[0], out[1]
	if shadow.Baseline != "timeskip" || shadow.BaselineNs != 100 {
		t.Errorf("shadow baseline = %s/%v, want timeskip/100", shadow.Baseline, shadow.BaselineNs)
	}
	if shadow.FlightPct != 10 || shadow.ProbedPct != 50 {
		t.Errorf("shadow overhead = flight %+v probed %+v, want +10/+50", shadow.FlightPct, shadow.ProbedPct)
	}
	if shadow.FlightAllocs != 7 {
		t.Errorf("shadow flight allocs = %v, want 7", shadow.FlightAllocs)
	}
	if para.Baseline != "event" || para.FlightPct != 25 {
		t.Errorf("para baseline = %s flight %+v, want event/+25", para.Baseline, para.FlightPct)
	}
}

func TestSpeedupSection(t *testing.T) {
	benches := []benchResult{
		{Name: "BenchmarkSim/mix-low/timeskip", NsPerOp: 100},
		{Name: "BenchmarkSim/mix-low/event", NsPerOp: 130},
		{Name: "BenchmarkSim/mix-low/rescan", NsPerOp: 150},
		// No timeskip cell: lane skipped.
		{Name: "BenchmarkSim/para/event", NsPerOp: 200},
		// Timeskip but no per-tick cells: lane skipped.
		{Name: "BenchmarkSim/drr/timeskip", NsPerOp: 50},
	}
	out := speedupSection(benches)
	if len(out) != 1 {
		t.Fatalf("got %d rows, want 1: %+v", len(out), out)
	}
	sp := out[0]
	if sp.Lane != "mix-low" || sp.VsEvent != 1.3 || sp.VsRescan != 1.5 {
		t.Errorf("got %+v, want mix-low 1.3x/1.5x", sp)
	}
}
