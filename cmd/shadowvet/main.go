// Command shadowvet runs the repository's custom static-analysis suite
// (internal/analysis) over package patterns and reports diagnostics with
// file:line positions, exiting non-zero on findings.
//
// Usage:
//
//	go run ./cmd/shadowvet ./...
//	go run ./cmd/shadowvet ./internal/... ./cmd/...
//	go run ./cmd/shadowvet -json ./... > shadowvet-report.json
//	go run ./cmd/shadowvet -sarif ./... > shadowvet.sarif
//	go run ./cmd/shadowvet -list
//
// The suite enforces simulator determinism (no wall-clock reads, no global
// math/rand, no order-sensitive map iteration in the simulation packages),
// exhaustive switches over the closed enums (span.Cause, obs.Kind,
// memctrl.CmdKind, ...), nil-receiver guards on the nil-safe obs hot-path
// types, the internal/ import DAG, the "<pkg>: ..." panic-message
// convention, checked errors on DRAM command-issuing methods, and the
// concurrency discipline: no by-value lock copies (locks), every
// Lock/RLock released on all paths with no double-lock and no blocking
// under a lock (lockflow, flow-sensitive over the internal/analysis/cfg
// control-flow graphs), a visible termination signal on every go
// statement (goroleak), and guarded writes to hot-path simulator state
// from goroutines or callbacks (sharedflow). Two interprocedural
// analyzers work over the module-wide call graph
// (internal/analysis/callgraph): allocflow proves everything reachable
// from the hot-path roots (the scheduler tick, the controller step, the
// minq/flight/span recording paths) allocation-free, and detflow flags
// calls from the simulation packages that transitively reach a
// nondeterminism source in unrestricted code. A finding can be waived with
// a "//shadowvet:ignore <analyzer> -- reason" comment on or above the
// offending line; the driver checks the waivers themselves (a reason is
// mandatory and a waiver that suppresses nothing is itself a finding).
//
// -json emits the findings as a JSON array (empty when clean) on stdout
// for CI annotation; -sarif emits a SARIF 2.1.0 log instead, the format
// code forges ingest for inline review annotations. The two are mutually
// exclusive. The human-readable summary stays on stderr. Packages are
// analyzed in parallel; output order is deterministic either way.
package main

import (
	"flag"
	"fmt"
	"os"

	"shadow/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (for CI annotation)")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout (for forge annotation)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shadowvet [-list] [-json|-sarif] [packages]\n\npackages are go-style patterns (default ./...)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "shadowvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowvet: %v\n", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowvet: %v\n", err)
		os.Exit(2)
	}

	// Loading stays sequential (the loader's importer cache is shared);
	// the analysis itself fans out per package below.
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		loaded, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowvet: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, pkg := range loaded {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "shadowvet: warning: %s: %v\n", pkg.Path, terr)
			}
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := analysis.Run(pkgs, analyzers, analysis.Options{
		CheckWaivers: true,
		Parallel:     true,
	})
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "shadowvet: %v\n", err)
			os.Exit(2)
		}
	} else if *sarifOut {
		if err := analysis.WriteSARIF(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "shadowvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "shadowvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
