package main

import (
	"testing"

	"shadow/internal/dram"
)

func TestResolveWorkload(t *testing.T) {
	geo := dram.DefaultGeometry(false)
	cases := []struct {
		name  string
		cores int
		want  int
	}{
		{"mix-high", 4, 4},
		{"mix-blend", 6, 6},
		{"mix-random", 3, 3},
		{"random-stream", 4, 1},
		{"mcf", 4, 1},
	}
	for _, c := range cases {
		ps, err := resolveWorkload(c.name, c.cores, geo)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(ps) != c.want {
			t.Errorf("%s: %d profiles, want %d", c.name, len(ps), c.want)
		}
	}
	if _, err := resolveWorkload("no-such-workload", 1, geo); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSchemeNamesComplete(t *testing.T) {
	names := schemeNames()
	if len(names) < 7 {
		t.Fatalf("only %d schemes listed", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scheme %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"shadow", "rrs", "blockhammer", "graphene", "para"} {
		if !seen[want] {
			t.Errorf("scheme %q missing", want)
		}
	}
}
