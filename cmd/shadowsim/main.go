// Command shadowsim runs one system simulation: a workload on a DRAM rank
// under a chosen Row Hammer mitigation, reporting performance and device
// statistics.
//
// Usage:
//
//	shadowsim -scheme shadow -workload mix-high -hcnt 4096 -duration-us 200
//	shadowsim -scheme baseline -workload mcf -grade ddr5
//	shadowsim -scheme shadow -trace-out t.json -metrics-out m.json -timeline
//	shadowsim -list   # show available workloads, schemes, and attacks
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"shadow/internal/cmdtrace"
	"shadow/internal/dram"
	"shadow/internal/exp"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/obs/span"
	"shadow/internal/report"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// attackNames lists the -attack patterns, in -list order.
var attackNames = []string{"single-sided", "double-sided", "blast", "half-double"}

func main() {
	scheme := flag.String("scheme", "shadow", "mitigation scheme")
	workload := flag.String("workload", "mix-high", "workload: mix-high, mix-blend, mix-random, random-stream, a profile name, or replay:<file.csv>")
	hcnt := flag.Int("hcnt", 4096, "Row Hammer threshold")
	blast := flag.Int("blast", 3, "blast radius")
	grade := flag.String("grade", "ddr4", "speed grade: ddr4 or ddr5")
	cores := flag.Int("cores", 4, "cores for multiprogrammed mixes")
	durationUS := flag.Int("duration-us", 200, "simulated duration, microseconds")
	seed := flag.Uint64("seed", 1, "seed")
	attack := flag.String("attack", "", "run an attack instead of a workload: "+strings.Join(attackNames, ", "))
	verifyProtocol := flag.Bool("verify-protocol", false, "validate the MC's command stream with the independent JEDEC checker")
	acts := flag.Int64("acts", 1<<16, "attack activation budget")
	list := flag.Bool("list", false, "list workloads, schemes, and attacks")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (open in ui.perfetto.dev)")
	metricsOut := flag.String("metrics-out", "", "write the metrics dump (.csv suffix selects CSV, else JSON)")
	timeline := flag.Bool("timeline", false, "print time-series strip charts after the run")
	progress := flag.Bool("progress", false, "print a stderr progress heartbeat")
	blame := flag.Bool("blame", false, "print the shadowtap stall-blame breakdown after the run")
	inspect := flag.String("inspect", "", "serve a live run inspector on this address (e.g. :8080)")
	workerID := flag.String("worker-id", "", "fleet worker identity for scrapeable-worker mode: adds a worker field to /status.json and a shadow_worker_info gauge to /metrics (requires -inspect)")
	flightCap := flag.Int("flight", flight.DefaultCapacity, "flight recorder capacity in events (0 disables the always-on flight lane)")
	flightOut := flag.String("flight-out", "", "write the flight-recorder dump (event window + watchdog trip) to this JSON file at exit")
	stallP99US := flag.Int64("stall-p99-us", 0, "arm the stall-spike watchdog: trip when the p99 request stall over the trailing window exceeds this many simulated microseconds (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator")
	pertick := flag.Bool("pertick", false, "use the per-tick scheduler instead of the event wheel (bit-identical results, differential baseline)")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	flag.Parse()

	if *list {
		fmt.Println("schemes: baseline", strings.Join(schemeNames(), " "))
		fmt.Println("workloads: mix-high mix-blend mix-random random-stream", strings.Join(trace.Names(), " "))
		fmt.Println("attacks:", strings.Join(attackNames, " "))
		return
	}

	startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	g := timing.DDR4_2666
	if *grade == "ddr5" {
		g = timing.DDR5_4800
	}
	o := exp.RunOpts{Duration: timing.Tick(*durationUS) * timing.Microsecond, Cores: *cores, Seed: *seed}
	geo := o.Geometry(g)

	// The flight recorder is the always-on telemetry lane: a fixed ring of
	// the last -flight hot-path events, recorded at zero allocations, dumped
	// when a watchdog trips, the process panics, or -flight-out asks for it.
	var ring *flight.Ring
	if *flightCap > 0 {
		ring = flight.NewRing(*flightCap)
	}
	watch := flight.NewWatch(ring)
	defer func() {
		// Deferred dump on panic: the ring holds the events leading up to
		// the failure even when no watchdog fired.
		if r := recover(); r != nil {
			watch.Ring().Freeze()
			dumpFlightOnPanic(watch, *flightOut)
			panic(r) //shadowvet:ignore panicmsg -- re-raising the original panic value after the flight dump
		}
	}()

	var rec *obs.Recorder
	var probe *obs.Probe
	needMetrics := *metricsOut != "" || *timeline || *inspect != ""
	if *traceOut != "" || needMetrics || ring != nil {
		rec = obs.NewRecorder(obs.Options{
			Metrics: needMetrics,
			Events:  *traceOut != "",
			Flight:  ring,
		})
		label := *scheme + "/" + *workload
		if *attack != "" {
			label = *scheme + "/attack:" + *attack
		}
		probe = rec.NewTrack(label)
	}

	if *attack != "" {
		runAttack(*attack, exp.Scheme(*scheme), g, geo, *hcnt, *blast, *acts, *seed, o.Duration, probe, *pertick)
		writeObs(rec, *traceOut, *metricsOut)
		if *timeline {
			printTimeline(rec, 0)
		}
		// Attack runs dump the window on request but arm no watchdogs:
		// bit flips are the experiment, not an anomaly.
		writeFlightFile(watch, *flightOut)
		return
	}

	var profiles []trace.Profile
	if !strings.HasPrefix(*workload, "replay:") {
		var err error
		profiles, err = resolveWorkload(*workload, *cores, geo)
		exitOn(err)
	}

	var workloads []trace.Generator
	var names []string
	if strings.HasPrefix(*workload, "replay:") {
		path := strings.TrimPrefix(*workload, "replay:")
		f, err := os.Open(path)
		exitOn(err)
		events, err := trace.ReadEvents(f)
		exitOn(err)
		exitOn(f.Close())
		if n := trace.ClampEvents(events, geo.Banks, geo.PARowsPerBank()); n > 0 {
			fmt.Printf("note: folded %d events into the %d-bank/%d-row geometry\n", n, geo.Banks, geo.PARowsPerBank())
		}
		r, err := trace.NewReplay(path, events)
		exitOn(err)
		workloads = []trace.Generator{r}
		names = []string{path}
	} else {
		workloads = trace.Generators(profiles, geo, *seed)
		for _, p := range profiles {
			names = append(names, p.Name)
		}
	}

	pt := exp.Point{Scheme: exp.Scheme(*scheme), HCnt: *hcnt, Blast: *blast, Grade: g, Seed: *seed}
	p, dm, mc := pt.Build(geo, o.Duration)
	var checker *cmdtrace.Checker
	var onCmd func(int, memctrl.Cmd)
	if *verifyProtocol {
		checker = cmdtrace.New(p, geo.Banks)
		onCmd = func(ch int, c memctrl.Cmd) { checker.Observe(c) }
	}
	var hb *obs.Heartbeat
	var progressFn func(timing.Tick)
	if *progress {
		hb = obs.NewHeartbeat(os.Stderr, *scheme+"/"+*workload, o.Duration, time.Now)
		if rec != nil {
			hb = hb.WithEvents(rec.EventCount)
		}
		progressFn = hb.Tick
	}

	var spans *span.Collector
	if *blame || *inspect != "" {
		spans = span.NewCollector(0)
	}

	// Arm the anomaly watchdogs. A trip freezes the ring at that moment so
	// the dump shows the events leading up to the anomaly, not its aftermath.
	if ring != nil {
		watch.Add(flight.FlipDetector(ring))
		if spans != nil {
			watch.Add(flight.Conservation(spans.Aggregate))
		}
		if *stallP99US > 0 {
			watch.Add(flight.StallSpike(ring, 10*timing.Microsecond,
				timing.Tick(*stallP99US)*timing.Microsecond))
		}
		watch.OnTrip(func(tr flight.Trip) {
			fmt.Fprintf(os.Stderr, "watchdog %s tripped at %d ps: %s (flight ring frozen)\n",
				tr.Watchdog, tr.AtPS, tr.Detail)
		})
		tick := progressFn
		progressFn = func(now timing.Tick) {
			if tick != nil {
				tick(now)
			}
			watch.Check(now)
		}
	}

	var ins *obs.Inspector
	var insShutdown func()
	if *inspect != "" {
		label := *scheme + "/" + *workload
		ins, insShutdown = startInspector(*inspect, label, rec, spans, watch)
		ins.SetWorker(*workerID)
		tick := progressFn
		total := o.Duration
		progressFn = func(now timing.Tick) {
			if tick != nil {
				tick(now)
			}
			ins.Observe(label, now, total)
		}
	}

	res, err := sim.Run(sim.Config{
		Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
		Hammer:     hammer.Config{HCnt: *hcnt, BlastRadius: *blast},
		Workload:   workloads,
		Duration:   o.Duration,
		OnCommand:  onCmd,
		Probe:      probe,
		Spans:      spans,
		Progress:   progressFn,
		NoTimeSkip: *pertick,
	})
	hb.Done()
	ins.Done()
	exitOn(err)
	// Final watchdog pass at run end: conservation over the complete span
	// aggregate, flips from the last progress interval.
	watch.Check(o.Duration)

	fmt.Printf("scheme=%s workload=%s grade=%v hcnt=%d blast=%d duration=%v\n",
		*scheme, *workload, g, *hcnt, *blast, o.Duration)
	fmt.Printf("RAAIMT=%d tRCD'=%v tRFM=%v\n", p.RAAIMT, p.EffectiveRCD(), p.RFM)
	for i, ipc := range res.IPC {
		fmt.Printf("core %2d (%-12s): IPC %.3f inst/ns (%d instructions)\n",
			i, names[i], ipc, res.Insts[i])
	}
	s := res.MC
	fmt.Printf("MC: acts=%d reads=%d writes=%d pres=%d refs=%d rfms=%d swaps=%d\n",
		s.Acts, s.Reads, s.Writes, s.Pres, s.Refs, s.RFMs, s.Swaps)
	fmt.Printf("    row-hit rate %.1f%%, avg read latency %v, channel blocked %v\n",
		s.RowHitRate()*100, s.AvgReadLatency(), s.BlockedTime)
	d := res.Dev
	fmt.Printf("device: row-copies=%d refreshed-rows=%d bit-flips=%d\n",
		d.RowCopies, d.RefRows, res.Flips)
	if checker != nil {
		if err := checker.Err(); err != nil {
			fmt.Printf("protocol: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		fmt.Printf("protocol: %d commands verified, 0 violations\n", checker.Commands())
	}
	if *blame {
		agg := spans.Aggregate()
		label := *scheme + "/" + *workload
		fmt.Println()
		fmt.Print(report.BlameTable("stall blame (percent of resident time per cause)",
			[]report.BlameRow{{Label: label, Agg: agg}}))
		fmt.Println()
		fmt.Print(report.CriticalPath(label, agg))
	}
	writeObs(rec, *traceOut, *metricsOut)
	if *timeline {
		printTimeline(rec, o.Duration)
	}
	writeFlightFile(watch, *flightOut)
	if insShutdown != nil {
		insShutdown()
	}
	if tr := watch.Tripped(); tr != nil {
		stopProfiles()
		os.Exit(1)
	}
}

// startInspector wires an obs.Inspector to the recorder, span collector, and
// flight watch, and serves it in the background. Sources run only on the
// simulation goroutine (inside Observe); handlers serve cached snapshots.
// The returned shutdown func drains the server gracefully once the run (and
// its final snapshot) is complete.
func startInspector(addr, label string, rec *obs.Recorder, spans *span.Collector, watch *flight.Watch) (*obs.Inspector, func()) {
	ins := obs.NewInspector(time.Now)
	src := obs.InspectorSources{
		Blame: func() []byte {
			return report.BlameJSON([]report.BlameRow{{Label: label, Agg: spans.Aggregate()}})
		},
	}
	if rec != nil {
		src.Events = rec.EventCount
		if m := rec.Metrics(); m != nil {
			src.Metrics = func() []byte {
				var b strings.Builder
				if err := m.WriteJSON(&b); err != nil {
					return nil
				}
				return []byte(b.String())
			}
			src.Prom = func() []byte {
				var b bytes.Buffer
				if err := m.WritePrometheus(&b); err != nil {
					return nil
				}
				return b.Bytes()
			}
		}
	}
	if watch.Ring() != nil {
		src.Flight = func() []byte {
			var b bytes.Buffer
			if err := watch.WriteDump(&b); err != nil {
				return nil
			}
			return b.Bytes()
		}
	}
	ins.SetSources(src)
	srv := &http.Server{Addr: addr, Handler: ins.Handler()}
	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "inspector: serving on %s\n", addr)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "inspector: shutdown: %v\n", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "inspector: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "inspector: shut down after final snapshot\n")
	}
	return ins, shutdown
}

// writeFlightFile writes the flight dump to path, if one was requested.
func writeFlightFile(watch *flight.Watch, path string) {
	if path == "" || watch.Ring() == nil {
		return
	}
	f, err := os.Create(path)
	exitOn(err)
	exitOn(watch.WriteDump(f))
	exitOn(f.Close())
	fmt.Printf("flight: %d of %d events preserved -> %s\n",
		watch.Ring().Len(), watch.Ring().Total(), path)
}

// dumpFlightOnPanic best-effort writes the frozen ring during a panic unwind:
// to -flight-out when given, else to stderr so the window is not lost.
func dumpFlightOnPanic(watch *flight.Watch, path string) {
	if watch.Ring() == nil {
		return
	}
	if path != "" {
		if f, err := os.Create(path); err == nil {
			watch.WriteDump(f)
			f.Close()
			fmt.Fprintf(os.Stderr, "panic: flight dump written to %s\n", path)
			return
		}
	}
	fmt.Fprintln(os.Stderr, "panic: flight dump follows")
	watch.WriteDump(os.Stderr)
}

// writeObs dumps the recorder's trace and metrics to the requested files.
func writeObs(rec *obs.Recorder, traceOut, metricsOut string) {
	if rec == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		exitOn(err)
		exitOn(rec.WriteChromeTrace(f))
		exitOn(f.Close())
		fmt.Printf("trace: %d events -> %s (open in ui.perfetto.dev)\n", rec.EventCount(), traceOut)
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d events dropped past the %d-event cap; raise obs.Options.MaxEvents or shorten the run\n", n, len(rec.Events()))
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		exitOn(err)
		if strings.HasSuffix(metricsOut, ".csv") {
			exitOn(rec.Metrics().WriteCSV(f))
		} else {
			exitOn(rec.Metrics().WriteJSON(f))
		}
		exitOn(f.Close())
		fmt.Printf("metrics: %s\n", metricsOut)
	}
}

// printTimeline renders every recorded time series as a terminal strip chart.
func printTimeline(rec *obs.Recorder, duration timing.Tick) {
	if rec == nil {
		return
	}
	m := rec.Metrics()
	names := m.SeriesNames()
	if len(names) == 0 {
		fmt.Println("timeline: no series recorded")
		return
	}
	span := ""
	if duration > 0 {
		span = fmt.Sprintf("0 - %v, %v/column bucket", duration, m.SampleInterval())
	}
	c := &report.StripChart{Title: "timeline", Span: span}
	for _, name := range names {
		c.Add(name, m.LookupSeries(name).Values())
	}
	fmt.Print(c.String())
}

// Profiling hooks. stopProfiles is idempotent and must run before any
// os.Exit so the pprof files are complete.
var profileState struct {
	cpu     *os.File
	memPath string
	stopped bool
}

func startProfiles(cpuPath, memPath string) {
	profileState.memPath = memPath
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		profileState.cpu = f
	}
}

func stopProfiles() {
	if profileState.stopped {
		return
	}
	profileState.stopped = true
	if profileState.cpu != nil {
		pprof.StopCPUProfile()
		profileState.cpu.Close()
	}
	if profileState.memPath != "" {
		f, err := os.Create(profileState.memPath)
		if err == nil {
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		}
	}
}

// attackPattern builds a named attack pattern over the geometry.
func attackPattern(name string, geo dram.Geometry) (trace.Pattern, error) {
	victim := geo.RowsPerSubarray / 2
	switch name {
	case "single-sided":
		return &trace.SingleSided{Bank: 0, Row: victim}, nil
	case "double-sided":
		return &trace.DoubleSided{Bank: 0, Victim: victim}, nil
	case "blast":
		return trace.Blast(0, victim, 2), nil
	case "half-double":
		return &trace.HalfDouble{Bank: 0, Victim: victim}, nil
	}
	return nil, fmt.Errorf("unknown attack %q (have: %s)", name, strings.Join(attackNames, ", "))
}

// runAttack mounts a Row Hammer pattern against the configured device and
// reports flips plus a full integrity scrub.
func runAttack(pattern string, scheme exp.Scheme, g timing.Grade, geo dram.Geometry, hcnt, blast int, acts int64, seed uint64, duration timing.Tick, probe *obs.Probe, pertick bool) {
	pat, err := attackPattern(pattern, geo)
	exitOn(err)
	pt := exp.Point{Scheme: scheme, HCnt: hcnt, Blast: blast, Grade: g, Seed: seed}
	p, dm, mcside := pt.Build(geo, duration)
	res, err := sim.RunAttack(sim.AttackConfig{
		Params:     p,
		Geometry:   geo,
		Hammer:     hammer.Config{HCnt: hcnt, BlastRadius: blast},
		DeviceMit:  dm,
		MCSide:     mcside,
		MaxActs:    acts,
		Duration:   timing.Forever / 2,
		Probe:      probe,
		NoTimeSkip: pertick,
	}, pat)
	exitOn(err)
	fmt.Printf("attack=%s scheme=%s hcnt=%d blast=%d\n", pat.Name(), scheme, hcnt, blast)
	fmt.Printf("activations: %d over %v (%d RFMs)\n", res.Acts, res.Elapsed, res.MC.RFMs)
	rep := res.Device.Scrub()
	fmt.Printf("scrub: %d rows checked, %d corrupted rows, %d flipped bits\n",
		rep.RowsChecked, rep.CorruptedRows, rep.CorruptedBits)
	if rep.CorruptedRows == 0 {
		fmt.Println("result: device integrity intact")
	} else {
		fmt.Println("result: ROW HAMMER CORRUPTION")
	}
}

func resolveWorkload(name string, cores int, geo interface{ PARowsPerBank() int }) ([]trace.Profile, error) {
	switch name {
	case "mix-high":
		return trace.MixHigh(cores), nil
	case "mix-blend":
		return trace.MixBlend(cores), nil
	case "mix-random":
		return trace.MixRandom(cores, 20230223), nil
	case "random-stream":
		return []trace.Profile{{Name: "random-stream", MPKI: 200, RowLocality: 0, WriteFrac: 0.2}}, nil
	default:
		p, err := trace.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		return []trace.Profile{p}, nil
	}
}

func schemeNames() []string {
	out := make([]string, len(exp.AllSchemes))
	for i, s := range exp.AllSchemes {
		out[i] = string(s)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
