// Command shadowsim runs one system simulation: a workload on a DRAM rank
// under a chosen Row Hammer mitigation, reporting performance and device
// statistics.
//
// Usage:
//
//	shadowsim -scheme shadow -workload mix-high -hcnt 4096 -duration-us 200
//	shadowsim -scheme baseline -workload mcf -grade ddr5
//	shadowsim -list   # show available workloads and schemes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shadow/internal/cmdtrace"
	"shadow/internal/dram"
	"shadow/internal/exp"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func main() {
	scheme := flag.String("scheme", "shadow", "mitigation scheme")
	workload := flag.String("workload", "mix-high", "workload: mix-high, mix-blend, mix-random, random-stream, a profile name, or replay:<file.csv>")
	hcnt := flag.Int("hcnt", 4096, "Row Hammer threshold")
	blast := flag.Int("blast", 3, "blast radius")
	grade := flag.String("grade", "ddr4", "speed grade: ddr4 or ddr5")
	cores := flag.Int("cores", 4, "cores for multiprogrammed mixes")
	durationUS := flag.Int("duration-us", 200, "simulated duration, microseconds")
	seed := flag.Uint64("seed", 1, "seed")
	attack := flag.String("attack", "", "run an attack instead of a workload: single-sided, double-sided, blast, half-double")
	verifyProtocol := flag.Bool("verify-protocol", false, "validate the MC's command stream with the independent JEDEC checker")
	acts := flag.Int64("acts", 1<<16, "attack activation budget")
	list := flag.Bool("list", false, "list workloads and schemes")
	flag.Parse()

	if *list {
		fmt.Println("schemes: baseline", strings.Join(schemeNames(), " "))
		fmt.Println("workloads: mix-high mix-blend mix-random random-stream", strings.Join(trace.Names(), " "))
		return
	}

	g := timing.DDR4_2666
	if *grade == "ddr5" {
		g = timing.DDR5_4800
	}
	o := exp.RunOpts{Duration: timing.Tick(*durationUS) * timing.Microsecond, Cores: *cores, Seed: *seed}
	geo := o.Geometry(g)

	if *attack != "" {
		runAttack(*attack, exp.Scheme(*scheme), g, geo, *hcnt, *blast, *acts, *seed, o.Duration)
		return
	}

	var profiles []trace.Profile
	if !strings.HasPrefix(*workload, "replay:") {
		var err error
		profiles, err = resolveWorkload(*workload, *cores, geo)
		exitOn(err)
	}

	var workloads []trace.Generator
	var names []string
	if strings.HasPrefix(*workload, "replay:") {
		path := strings.TrimPrefix(*workload, "replay:")
		f, err := os.Open(path)
		exitOn(err)
		events, err := trace.ReadEvents(f)
		exitOn(err)
		exitOn(f.Close())
		if n := trace.ClampEvents(events, geo.Banks, geo.PARowsPerBank()); n > 0 {
			fmt.Printf("note: folded %d events into the %d-bank/%d-row geometry\n", n, geo.Banks, geo.PARowsPerBank())
		}
		r, err := trace.NewReplay(path, events)
		exitOn(err)
		workloads = []trace.Generator{r}
		names = []string{path}
	} else {
		workloads = trace.Generators(profiles, geo, *seed)
		for _, p := range profiles {
			names = append(names, p.Name)
		}
	}

	pt := exp.Point{Scheme: exp.Scheme(*scheme), HCnt: *hcnt, Blast: *blast, Grade: g, Seed: *seed}
	p, dm, mc := pt.Build(geo, o.Duration)
	var checker *cmdtrace.Checker
	var onCmd func(int, memctrl.Cmd)
	if *verifyProtocol {
		checker = cmdtrace.New(p, geo.Banks)
		onCmd = func(ch int, c memctrl.Cmd) { checker.Observe(c) }
	}
	res, err := sim.Run(sim.Config{
		Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
		Hammer:    hammer.Config{HCnt: *hcnt, BlastRadius: *blast},
		Workload:  workloads,
		Duration:  o.Duration,
		OnCommand: onCmd,
	})
	exitOn(err)

	fmt.Printf("scheme=%s workload=%s grade=%v hcnt=%d blast=%d duration=%v\n",
		*scheme, *workload, g, *hcnt, *blast, o.Duration)
	fmt.Printf("RAAIMT=%d tRCD'=%v tRFM=%v\n", p.RAAIMT, p.EffectiveRCD(), p.RFM)
	for i, ipc := range res.IPC {
		fmt.Printf("core %2d (%-12s): IPC %.3f inst/ns (%d instructions)\n",
			i, names[i], ipc, res.Insts[i])
	}
	s := res.MC
	fmt.Printf("MC: acts=%d reads=%d writes=%d pres=%d refs=%d rfms=%d swaps=%d\n",
		s.Acts, s.Reads, s.Writes, s.Pres, s.Refs, s.RFMs, s.Swaps)
	fmt.Printf("    row-hit rate %.1f%%, avg read latency %v, channel blocked %v\n",
		s.RowHitRate()*100, s.AvgReadLatency(), s.BlockedTime)
	d := res.Dev
	fmt.Printf("device: row-copies=%d refreshed-rows=%d bit-flips=%d\n",
		d.RowCopies, d.RefRows, res.Flips)
	if checker != nil {
		if err := checker.Err(); err != nil {
			fmt.Printf("protocol: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("protocol: %d commands verified, 0 violations\n", checker.Commands())
	}
}

// runAttack mounts a Row Hammer pattern against the configured device and
// reports flips plus a full integrity scrub.
func runAttack(pattern string, scheme exp.Scheme, g timing.Grade, geo dram.Geometry, hcnt, blast int, acts int64, seed uint64, duration timing.Tick) {
	victim := geo.RowsPerSubarray / 2
	var pat trace.Pattern
	switch pattern {
	case "single-sided":
		pat = &trace.SingleSided{Bank: 0, Row: victim}
	case "double-sided":
		pat = &trace.DoubleSided{Bank: 0, Victim: victim}
	case "blast":
		pat = trace.Blast(0, victim, 2)
	case "half-double":
		pat = &trace.HalfDouble{Bank: 0, Victim: victim}
	default:
		exitOn(fmt.Errorf("unknown attack %q", pattern))
	}
	pt := exp.Point{Scheme: scheme, HCnt: hcnt, Blast: blast, Grade: g, Seed: seed}
	p, dm, mcside := pt.Build(geo, duration)
	res, err := sim.RunAttack(sim.AttackConfig{
		Params:    p,
		Geometry:  geo,
		Hammer:    hammer.Config{HCnt: hcnt, BlastRadius: blast},
		DeviceMit: dm,
		MCSide:    mcside,
		MaxActs:   acts,
		Duration:  timing.Forever / 2,
	}, pat)
	exitOn(err)
	fmt.Printf("attack=%s scheme=%s hcnt=%d blast=%d\n", pat.Name(), scheme, hcnt, blast)
	fmt.Printf("activations: %d over %v (%d RFMs)\n", res.Acts, res.Elapsed, res.MC.RFMs)
	rep := res.Device.Scrub()
	fmt.Printf("scrub: %d rows checked, %d corrupted rows, %d flipped bits\n",
		rep.RowsChecked, rep.CorruptedRows, rep.CorruptedBits)
	if rep.CorruptedRows == 0 {
		fmt.Println("result: device integrity intact")
	} else {
		fmt.Println("result: ROW HAMMER CORRUPTION")
	}
}

func resolveWorkload(name string, cores int, geo interface{ PARowsPerBank() int }) ([]trace.Profile, error) {
	switch name {
	case "mix-high":
		return trace.MixHigh(cores), nil
	case "mix-blend":
		return trace.MixBlend(cores), nil
	case "mix-random":
		return trace.MixRandom(cores, 20230223), nil
	case "random-stream":
		return []trace.Profile{{Name: "random-stream", MPKI: 200, RowLocality: 0, WriteFrac: 0.2}}, nil
	default:
		p, err := trace.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		return []trace.Profile{p}, nil
	}
}

func schemeNames() []string {
	out := make([]string, len(exp.AllSchemes))
	for i, s := range exp.AllSchemes {
		out[i] = string(s)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
