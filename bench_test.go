// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for SHADOW's design choices. Each benchmark
// regenerates its experiment at the harness's quick scale and reports the
// headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Raise the scale with the shadowexp CLI for
// higher-fidelity runs.
package shadow_test

import (
	"testing"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/exp"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/obs/span"
	"shadow/internal/power"
	"shadow/internal/security"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func benchOpts() exp.RunOpts {
	return exp.RunOpts{Duration: 60 * timing.Microsecond, Cores: 4, Subarrays: 8, Seed: 5}
}

// BenchmarkSim measures raw simulator throughput — the perf gate of the
// scheduler optimizations. Four headline schemes (DDR4-2666, 4 cores,
// mix-high), each in five modes: the tick-skipping event wheel as shipped
// (timeskip), the PR 5 event-driven scheduler on the per-tick loop (event —
// the name keeps its historical meaning so BENCH comparisons across PRs stay
// apples-to-apples), the shipped configuration with the always-on telemetry
// lane (flight: metrics probe + flight ring), with full observation attached
// (probed: shadowscope probe + shadowtap spans, which force non-idle banks
// volatile and so collapse the wheel toward per-tick behavior), and the
// legacy full-rescan per-tick scheduler kept compiled for the equivalence
// matrix (rescan — the double-oracle). A fifth scheme lane, mix-low, runs
// the idle-heavy sub-1-MPKI workload where the wheel's jumps dominate: its
// timeskip-vs-event ratio is the wheel's headline speedup. Run with
// -benchmem; shadowbench records ns/op, allocs/op, and sims/sec into the
// BENCH report and derives the telemetry-overhead section from event vs
// flight vs probed.
func BenchmarkSim(b *testing.B) {
	schemes := []exp.Scheme{exp.Baseline, exp.Shadow, exp.MithrilPerf, exp.BlockHammer}
	modes := []struct {
		name                            string
		flight, probed, rescan, pertick bool
	}{
		{name: "timeskip"},
		{name: "event", pertick: true},
		{name: "flight", flight: true},
		{name: "probed", probed: true},
		{name: "rescan", rescan: true, pertick: true},
	}
	for _, scheme := range schemes {
		for _, mode := range modes {
			mode := mode
			b.Run(string(scheme)+"/"+mode.name, func(b *testing.B) {
				benchSim(b, scheme, trace.MixHigh(benchOpts().Cores), mode.flight, mode.probed, mode.rescan, mode.pertick)
			})
		}
	}
	// The idle-heavy lane: no telemetry variants, just the scheduler axis.
	// 64 sub-1-MPKI cores on a long horizon is the wheel's headline shape —
	// the per-tick loop pays an O(cores) issue scan at every wakeup, the
	// wheel pops only the cores that are actually due. The horizon is 1 ms
	// (17x the mix-high lane) so the loop dominates construction cost. Past
	// ~64 cores even this mix saturates the bank queues and enqueue-backoff
	// polling erases the wheel's edge, so the lane stays at 64.
	for _, mode := range modes {
		mode := mode
		if mode.flight || mode.probed {
			continue
		}
		b.Run("mix-low/"+mode.name, func(b *testing.B) {
			o := benchOpts()
			o.Cores = 64
			o.Duration = timing.Millisecond
			benchSimOpts(b, o, exp.Shadow, trace.MixLow(o.Cores), false, false, mode.rescan, mode.pertick)
		})
	}
}

func benchSim(b *testing.B, scheme exp.Scheme, profiles []trace.Profile, flighted, probed, rescan, pertick bool) {
	benchSimOpts(b, benchOpts(), scheme, profiles, flighted, probed, rescan, pertick)
}

func benchSimOpts(b *testing.B, o exp.RunOpts, scheme exp.Scheme, profiles []trace.Profile, flighted, probed, rescan, pertick bool) {
	geo := o.Geometry(timing.DDR4_2666)
	for i := range profiles {
		if profiles[i].WorkingSetRows > geo.PARowsPerBank() {
			profiles[i].WorkingSetRows = geo.PARowsPerBank()
		}
	}
	b.ReportAllocs()
	// Warm process-level caches (the Table II security analytics behind
	// scheme construction) outside the timed region so ns/op reflects
	// steady-state simulation cost rather than first-call setup.
	warm := exp.Point{Scheme: scheme, HCnt: 4096, Blast: 3, Grade: timing.DDR4_2666, Seed: o.Seed}
	warm.Build(geo, o.Duration)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := exp.Point{Scheme: scheme, HCnt: 4096, Blast: 3, Grade: timing.DDR4_2666, Seed: o.Seed}
		p, dm, mc := pt.Build(geo, o.Duration)
		cfg := sim.Config{
			Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
			Hammer:     hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
			Workload:   trace.Generators(profiles, geo, o.Seed),
			Duration:   o.Duration,
			FullRescan: rescan,
			NoTimeSkip: pertick,
		}
		if flighted {
			// The always-on config: metrics plus a flight ring, no spans
			// and no growable event log.
			rec := obs.NewRecorder(obs.Options{Metrics: true, Flight: flight.NewRing(flight.DefaultCapacity)})
			cfg.Probe = rec.NewTrack(string(scheme))
		}
		if probed {
			rec := obs.NewRecorder(obs.Options{Metrics: true})
			cfg.Probe = rec.NewTrack(string(scheme))
			cfg.Spans = span.NewCollector(0)
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sims/sec")
}

// BenchmarkTable2 regenerates Table II: SHADOW's rank-year bit-flip
// probability across RAAIMT x H_cnt via the Appendix XI analytics.
func BenchmarkTable2(b *testing.B) {
	var secure int
	for i := 0; i < b.N; i++ {
		secure = 0
		for _, raaimt := range []int{128, 64, 32} {
			for _, hcnt := range []int{8192, 4096, 2048} {
				if security.DefaultConfig(hcnt, raaimt).Secure() {
					secure++
				}
			}
		}
	}
	b.ReportMetric(float64(secure), "secure-cells")
	b.ReportMetric(security.DefaultConfig(4096, 64).BitFlipProbability(), "p(4K,64)")
}

// BenchmarkTable3 regenerates Table III: the circuit model's SHADOW timings.
func BenchmarkTable3(b *testing.B) {
	p := timing.NewParams(timing.DDR4_2666)
	var r circuit.Results
	for i := 0; i < b.N; i++ {
		r = circuit.DefaultModel().Evaluate(p)
	}
	b.ReportMetric(r.TRCDShadow, "tRCD'-ns")
	b.ReportMetric(r.TRDRM, "tRD_RM-ns")
	b.ReportMetric(r.RowCopy, "rowcopy-ns")
}

// BenchmarkFig8 regenerates Figure 8: relative performance of the
// RFM-compatible schemes at H_cnt 4K on the paper's workload groups.
func BenchmarkFig8(b *testing.B) {
	var points []exp.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, _, err = exp.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report := map[string]float64{}
	for _, p := range points {
		if p.Scheme == exp.Shadow {
			report[p.Workload] = p.Rel
		}
	}
	b.ReportMetric(report["mix-high"], "shadow-mix-high")
	b.ReportMetric(report["spec-HIGH"], "shadow-spec-high")
}

// BenchmarkFig9 regenerates Figure 9: SHADOW's tRCD sensitivity sweep.
func BenchmarkFig9(b *testing.B) {
	var points []exp.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, _, err = exp.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 1.0
	for _, p := range points {
		if p.Rel < worst {
			worst = p.Rel
		}
	}
	b.ReportMetric(worst, "worst-ws")
}

// BenchmarkFig10 regenerates Figure 10: the blast-radius sweep.
func BenchmarkFig10(b *testing.B) {
	var points []exp.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, _, err = exp.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	at5 := map[exp.Scheme]float64{}
	for _, p := range points {
		if p.Blast == 5 && p.Workload == "mix-high" {
			at5[p.Scheme] = p.Rel
		}
	}
	b.ReportMetric(at5[exp.Shadow], "shadow-blast5")
	b.ReportMetric(at5[exp.PARFM], "parfm-blast5")
}

// BenchmarkFig11 regenerates Figure 11 at a reduced sweep (the tracker
// schemes need millisecond horizons): SHADOW vs BlockHammer vs RRS at the
// low-H_cnt corner where the paper's crossover happens.
func BenchmarkFig11(b *testing.B) {
	o := exp.RunOpts{Duration: 300 * timing.Microsecond, Warmup: 900 * timing.Microsecond, Cores: 4, Subarrays: 8, Seed: 5}
	rel := map[exp.Scheme]float64{}
	for i := 0; i < b.N; i++ {
		for _, s := range []exp.Scheme{exp.Shadow, exp.BlockHammer, exp.RRS} {
			ws, _, err := exp.RunPoint(exp.Point{Scheme: s, HCnt: 2048, Grade: timing.DDR5_4800, Seed: 5}, trace.MixHigh(o.Cores), o)
			if err != nil {
				b.Fatal(err)
			}
			rel[s] = ws
		}
	}
	b.ReportMetric(rel[exp.Shadow], "shadow-2K")
	b.ReportMetric(rel[exp.BlockHammer], "blockhammer-2K")
	b.ReportMetric(rel[exp.RRS], "rrs-2K")
}

// BenchmarkFig12 regenerates Figure 12: relative system power and RFM/REF.
func BenchmarkFig12(b *testing.B) {
	var points []exp.PowerPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, _, err = exp.Fig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Workload == "mix-high" && p.HCnt == 2048 {
			b.ReportMetric((p.RelPower-1)*100, "power-incr-%")
			b.ReportMetric(p.RFMPerREF, "rfm/ref")
		}
	}
}

// BenchmarkAdversarial regenerates the Section VII-C worst-case bounds.
func BenchmarkAdversarial(b *testing.B) {
	var res exp.AdversarialResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = exp.Adversarial(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TRCDOnly, "trcd-only")
	b.ReportMetric(res.Full, "max-rfm")
}

// BenchmarkAreaPower regenerates the Section VII-D overhead numbers.
func BenchmarkAreaPower(b *testing.B) {
	g := dram.DefaultGeometry(true)
	var area, capacity float64
	for i := 0; i < b.N; i++ {
		m := power.DefaultAreaModel()
		area = m.AreaOverhead(g)
		capacity = m.CapacityOverhead(g)
	}
	b.ReportMetric(area*100, "area-%")
	b.ReportMetric(capacity*100, "capacity-%")
}

// BenchmarkAblationIncrementalRefresh measures the protection value of the
// incremental refresh (DESIGN.md ablation): flips under a scenario-I-style
// attack with and without it, at a samplable operating point.
func BenchmarkAblationIncrementalRefresh(b *testing.B) {
	flips := map[bool]int{}
	for i := 0; i < b.N; i++ {
		for _, incOff := range []bool{false, true} {
			geo := dram.TestGeometry()
			p := timing.NewParams(timing.DDR4_2666).
				WithShadow(circuit.DefaultShadowTimings(timing.NewParams(timing.DDR4_2666))).
				WithRAAIMT(16)
			res, err := sim.RunAttack(sim.AttackConfig{
				Params:   p,
				Geometry: geo,
				Hammer:   hammer.Config{HCnt: 192, BlastRadius: 3},
				DeviceMit: shadow.New(shadow.Options{
					Seed:                      uint64(i) + 1,
					DisableIncrementalRefresh: incOff,
				}),
				MaxActs:  60000,
				Duration: timing.Forever / 2,
			}, trace.NewScenarioII(0, 1, 4, geo, uint64(i)+1))
			if err != nil {
				b.Fatal(err)
			}
			flips[incOff] += res.Flips
		}
	}
	b.ReportMetric(float64(flips[false]), "flips-with-incref")
	b.ReportMetric(float64(flips[true]), "flips-without")
}

// BenchmarkAblationRFMFilter measures the Section VIII RFM-filter extension:
// RFMs issued with and without the filter on a benign workload.
func BenchmarkAblationRFMFilter(b *testing.B) {
	var with, without int64
	for i := 0; i < b.N; i++ {
		for _, filtered := range []bool{false, true} {
			base := timing.NewParams(timing.DDR4_2666)
			p := base.WithShadow(circuit.DefaultShadowTimings(base)).WithRAAIMT(32)
			geo := exp.RunOpts{Subarrays: 8}.Geometry(timing.DDR4_2666)
			var filter *mitigate.RFMFilter
			if filtered {
				filter = mitigate.NewRFMFilter(1024, 4, 16, p.REFW)
			}
			res, err := sim.Run(sim.Config{
				Params:    p,
				Geometry:  geo,
				Hammer:    hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
				DeviceMit: shadow.New(shadow.Options{Seed: 9}),
				RFMFilter: filter,
				Workload:  trace.Generators(trace.MixBlend(4), geo, 9),
				Duration:  60 * timing.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if filtered {
				with = res.MC.RFMs
			} else {
				without = res.MC.RFMs
			}
		}
	}
	b.ReportMetric(float64(without), "rfms-unfiltered")
	b.ReportMetric(float64(with), "rfms-filtered")
}

// BenchmarkShadowShuffleOp measures the raw software cost of one row-shuffle
// (table decode, two row copies, table update) — the hot path of the
// mitigation itself.
func BenchmarkShadowShuffleOp(b *testing.B) {
	ctrl := shadow.New(shadow.Options{Seed: 1})
	p := timing.NewParams(timing.DDR4_2666).WithRAAIMT(4)
	d := dram.MustNewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    p,
		Hammer:    hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
		Mitigator: ctrl,
	})
	now := timing.Tick(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Activate(0, i%32, now); err != nil {
			b.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(0, now); err != nil {
			b.Fatal(err)
		}
		now += p.RP
		if d.Bank(0).RAA >= p.RAAIMT {
			if err := d.RFM(0, now); err != nil {
				b.Fatal(err)
			}
			now += p.RFM
		}
	}
}

// BenchmarkAblationPairingDistance compares the adjacent (distance-1) and
// open-bitline (distance-2) subarray pairings: protection must be identical
// (the pairing only changes which physical row holds the table).
func BenchmarkAblationPairingDistance(b *testing.B) {
	flips := map[int]int{}
	for i := 0; i < b.N; i++ {
		for _, dist := range []int{1, 2} {
			res, err := sim.RunAttack(sim.AttackConfig{
				Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(16),
				Geometry:  dram.TestGeometry(),
				Hammer:    hammer.Config{HCnt: 512, BlastRadius: 3},
				DeviceMit: shadow.New(shadow.Options{Seed: uint64(i) + 1, PairDistance: dist}),
				MaxActs:   30000,
				Duration:  timing.Forever / 2,
			}, &trace.DoubleSided{Bank: 0, Victim: 16})
			if err != nil {
				b.Fatal(err)
			}
			flips[dist] += res.Flips
		}
	}
	b.ReportMetric(float64(flips[1]), "flips-dist1")
	b.ReportMetric(float64(flips[2]), "flips-dist2")
}

// BenchmarkTemplatingDecay measures how fast SHADOW rots an attacker's
// adjacency template (Section III-A).
func BenchmarkTemplatingDecay(b *testing.B) {
	var half int64
	for i := 0; i < b.N; i++ {
		points, err := security.MeasureTemplatingDecay(security.TemplatingConfig{
			RowsPerSubarray: 128,
			RAAIMT:          32,
			Checkpoints:     []int64{0, 16, 32, 64, 128, 256},
			Seed:            uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		half = points[len(points)-1].Shuffles
		for _, p := range points {
			if p.ValidFraction <= 0.5 {
				half = p.Shuffles
				break
			}
		}
	}
	b.ReportMetric(float64(half), "shuffles-to-half-validity")
}
